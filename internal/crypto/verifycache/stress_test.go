package verifycache

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/types"
)

// TestSingleFlightStress drives many goroutines through overlapping
// (signer, msg, sig) sets. With ample capacity, single-flight plus
// memoization must compute each distinct key exactly once, and every
// caller must observe the correct verification result. Run under -race
// this is the cache's concurrency gate (the TCP transport verifies
// through the same path from many connection goroutines).
func TestSingleFlightStress(t *testing.T) {
	const (
		goroutines = 16
		keys       = 64
		iterations = 200
	)
	ring, err := sig.NewHMACRing(8, []byte("stress"))
	if err != nil {
		t.Fatal(err)
	}
	type item struct {
		signer types.ProcessID
		msg    []byte
		sig    sig.Signature
		valid  bool
	}
	items := make([]item, keys)
	for i := range items {
		signer := types.ProcessID(i % 8)
		msg := []byte(fmt.Sprintf("msg-%d", i/2))
		sg, err := ring.Sign(signer, msg)
		if err != nil {
			t.Fatal(err)
		}
		valid := i%3 != 0
		if !valid {
			sg = sg.Clone()
			sg[0] ^= 0xff
		}
		items[i] = item{signer: signer, msg: msg, sig: sg, valid: valid}
	}

	c := New(16 * keys)
	computes := make([]atomic.Int64, keys)
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for it := 0; it < iterations; it++ {
				// Overlapping strides: every goroutine touches every key,
				// phase-shifted so identical keys collide in flight.
				i := (it + g) % keys
				got := c.Do(SigKey(items[i].signer, items[i].msg, items[i].sig), func() bool {
					computes[i].Add(1)
					return ring.Verify(items[i].signer, items[i].msg, items[i].sig)
				})
				if got != items[i].valid {
					errs <- fmt.Sprintf("key %d: got %v, want %v", i, got, items[i].valid)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	for i := range computes {
		if n := computes[i].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want 1", i, n)
		}
	}
	st := c.Stats()
	if want := int64(goroutines*iterations - keys); st.Hits+st.InflightWaits != want {
		t.Errorf("hits+waits = %d, want %d", st.Hits+st.InflightWaits, want)
	}
	if st.Misses != keys {
		t.Errorf("misses = %d, want %d", st.Misses, keys)
	}
}

// TestConcurrentWrappedScheme hammers one cached scheme from many
// goroutines mixing valid and forged signatures (race + correctness).
func TestConcurrentWrappedScheme(t *testing.T) {
	ring, err := sig.NewHMACRing(4, []byte("wrap-stress"))
	if err != nil {
		t.Fatal(err)
	}
	s := WrapScheme(ring, New(512))
	msgs := make([][]byte, 16)
	sigs := make([]sig.Signature, 16)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("m%d", i))
		sigs[i], err = s.Sign(types.ProcessID(i%4), msgs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 300; it++ {
				i := (it + g) % 16
				signer := types.ProcessID(i % 4)
				if !s.Verify(signer, msgs[i], sigs[i]) {
					failures.Add(1)
				}
				forged := sigs[i].Clone()
				forged[it%len(forged)] ^= 1
				if s.Verify(signer, msgs[i], forged) {
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Errorf("%d wrong verification results under concurrency", failures.Load())
	}
}

// FuzzCachedVerifyMatchesDirect checks the cache is semantically
// transparent: for arbitrary (signer, msg, sig) inputs the cached scheme
// must agree with the bare scheme, on first sight and from the cache,
// including for real signatures and their single-byte corruptions.
func FuzzCachedVerifyMatchesDirect(f *testing.F) {
	f.Add(int64(0), []byte("msg"), []byte("sig"))
	f.Add(int64(3), []byte(""), []byte(""))
	f.Add(int64(-1), []byte("x"), bytes.Repeat([]byte{0xaa}, 16))
	f.Fuzz(func(t *testing.T, signer int64, msg, rawSig []byte) {
		ring, err := sig.NewHMACRing(4, []byte("fuzz"))
		if err != nil {
			t.Fatal(err)
		}
		cached := WrapScheme(ring, New(256))
		id := types.ProcessID(signer)
		want := ring.Verify(id, msg, rawSig)
		for i := 0; i < 2; i++ { // first sight, then cached
			if got := cached.Verify(id, msg, rawSig); got != want {
				t.Fatalf("pass %d: cached=%v direct=%v", i, got, want)
			}
		}
		// A genuine signature must verify through the cache, and its
		// corruption must not inherit the cached positive.
		okID := types.ProcessID(((signer % 4) + 4) % 4)
		genuine, err := ring.Sign(okID, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !cached.Verify(okID, msg, genuine) {
			t.Fatal("genuine signature rejected")
		}
		corrupt := genuine.Clone()
		corrupt[int(uint64(signer)%uint64(len(corrupt)))] ^= 0x01
		if cached.Verify(okID, msg, corrupt) {
			t.Fatal("corrupted signature accepted after genuine cached")
		}
	})
}
