package verifycache

import (
	"crypto/rand"
	"fmt"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/types"
)

func benchSchemes(b *testing.B) map[string]sig.Scheme {
	b.Helper()
	hm, err := sig.NewHMACRing(8, []byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	ed, err := sig.NewEd25519Ring(8, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	return map[string]sig.Scheme{"hmac": hm, "ed25519": ed}
}

// BenchmarkVerify compares raw scheme verification against the cached
// wrapper on a repeated (signer, msg, sig) triple — the simulator's hot
// pattern, where every machine re-verifies the same relayed signatures.
func BenchmarkVerify(b *testing.B) {
	for name, base := range benchSchemes(b) {
		msg := []byte("benchmark message for repeated verification")
		sg, err := base.Sign(3, msg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/uncached", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !base.Verify(3, msg, sg) {
					b.Fatal("verify failed")
				}
			}
		})
		b.Run(name+"/cached", func(b *testing.B) {
			s := WrapScheme(base, New(DefaultCapacity))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !s.Verify(3, msg, sg) {
					b.Fatal("verify failed")
				}
			}
		})
	}
}

// BenchmarkVerifyColdKeys measures the worst case for the cache: every
// verification is a distinct key, so each pays hashing + insertion on
// top of the real verify (the overhead the fast path must keep small).
func BenchmarkVerifyColdKeys(b *testing.B) {
	for name, base := range benchSchemes(b) {
		msgs := make([][]byte, 1024)
		sigs := make([]sig.Signature, len(msgs))
		for i := range msgs {
			msgs[i] = []byte(fmt.Sprintf("cold message %d", i))
			sg, err := base.Sign(types.ProcessID(i%8), msgs[i])
			if err != nil {
				b.Fatal(err)
			}
			sigs[i] = sg
		}
		b.Run(name, func(b *testing.B) {
			s := WrapScheme(base, New(512)) // smaller than the key set: constant churn
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := i % len(msgs)
				if !s.Verify(types.ProcessID(j%8), msgs[j], sigs[j]) {
					b.Fatal("verify failed")
				}
			}
		})
	}
}

func BenchmarkSigKey(b *testing.B) {
	msg := make([]byte, 128)
	sg := sig.Signature(make([]byte, 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SigKey(5, msg, sg)
	}
}
