package verifycache

import (
	"crypto/rand"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/types"
)

// forgerySchemes builds one cached wrapper per base scheme implementation.
func forgerySchemes(t *testing.T) map[string]sig.Scheme {
	t.Helper()
	hm, err := sig.NewHMACRing(5, []byte("forgery"))
	if err != nil {
		t.Fatal(err)
	}
	ed, err := sig.NewEd25519Ring(5, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]sig.Scheme{
		"hmac":    WrapScheme(hm, New(4096)),
		"ed25519": WrapScheme(ed, New(4096)),
	}
}

// TestCachedPositiveCannotLaunderForgery is the cache's central safety
// property: after a valid (signer, msg, sig) verification is cached
// positive, any bit-level variation of the signature or message must be
// treated as a distinct key and fail verification — a cached "true" can
// never vouch for bytes that were not actually checked.
func TestCachedPositiveCannotLaunderForgery(t *testing.T) {
	for name, s := range forgerySchemes(t) {
		t.Run(name, func(t *testing.T) {
			msg := []byte("transfer 10 coins to p2")
			sg, err := s.Sign(1, msg)
			if err != nil {
				t.Fatal(err)
			}
			// Prime the cache with the honest verification.
			if !s.Verify(1, msg, sg) {
				t.Fatal("honest signature rejected")
			}
			// Every single-bit perturbation of the signature must fail.
			for i := range sg {
				for bit := 0; bit < 8; bit++ {
					forged := sg.Clone()
					forged[i] ^= 1 << bit
					if s.Verify(1, msg, forged) {
						t.Fatalf("bit-flipped signature (byte %d bit %d) accepted", i, bit)
					}
				}
			}
			// Same signature, perturbed message.
			for _, m2 := range [][]byte{
				[]byte("transfer 10 coins to p3"),
				[]byte("transfer 10 coins to p2 "),
				msg[:len(msg)-1],
				{},
			} {
				if s.Verify(1, m2, sg) {
					t.Fatalf("signature accepted for altered message %q", m2)
				}
			}
			// Same bytes, wrong claimed signer.
			if s.Verify(2, msg, sg) {
				t.Fatal("signature accepted for wrong signer")
			}
			// The honest entry is still served correctly after the misses.
			if !s.Verify(1, msg, sg) {
				t.Fatal("honest signature rejected after forgery probes")
			}
		})
	}
}

// TestCachedNegativeStaysNegative: caching an invalid signature must not
// block the honest signature from verifying, and vice versa.
func TestCachedNegativeStaysNegative(t *testing.T) {
	for name, s := range forgerySchemes(t) {
		t.Run(name, func(t *testing.T) {
			msg := []byte("m")
			bad := sig.Signature(make([]byte, s.SignatureSize()))
			if s.Verify(0, msg, bad) {
				t.Fatal("zero signature accepted")
			}
			sg, err := s.Sign(0, msg)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Verify(0, msg, sg) {
				t.Fatal("honest signature rejected after negative cached")
			}
			if s.Verify(0, msg, bad) {
				t.Fatal("cached negative flipped")
			}
		})
	}
}

// TestCrossSignerIsolation: process p's valid signature on msg must never
// satisfy a verification request for process q, even when both are cached.
func TestCrossSignerIsolation(t *testing.T) {
	for name, s := range forgerySchemes(t) {
		t.Run(name, func(t *testing.T) {
			msg := []byte("shared message")
			sigs := make([]sig.Signature, 5)
			for p := types.ProcessID(0); p < 5; p++ {
				sg, err := s.Sign(p, msg)
				if err != nil {
					t.Fatal(err)
				}
				sigs[p] = sg
				if !s.Verify(p, msg, sg) {
					t.Fatalf("p%d signature rejected", p)
				}
			}
			for p := types.ProcessID(0); p < 5; p++ {
				for q := types.ProcessID(0); q < 5; q++ {
					if p == q {
						continue
					}
					if s.Verify(q, msg, sigs[p]) {
						t.Fatalf("p%d signature accepted as p%d", p, q)
					}
				}
			}
		})
	}
}
