// Package oracle provides online invariant monitors: observers that watch
// a run's wire traffic (via sim.Config.OnSend) and flag violations of the
// paper's safety invariants the moment they become observable, rather than
// only checking final decisions. They serve as an independent test oracle
// under every adversary:
//
//   - at most one finalize-certified value may ever circulate
//     (Lemma 15's global uniqueness claim);
//   - an honest process never signs two different vote or decide shares
//     in the same phase (the local discipline Lemma 15's proof counts on);
//   - an honest process never emits an invalid certificate.
//
// The monitor understands the weak BA payloads but is independent of the
// machine implementation, so a bug there cannot blind it.
package oracle

import (
	"fmt"
	"sync"

	"adaptiveba/internal/core/strongba"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// WBA monitors one weak BA instance.
type WBA struct {
	mu     sync.Mutex
	tag    string
	phases int
	scheme *threshold.Scheme

	finalizedValue types.Value // first certified finalize value seen
	votes          map[sigKey]types.Value
	decides        map[sigKey]types.Value
	violations     []string
}

type sigKey struct {
	from  types.ProcessID
	phase int
}

// NewWBA builds a monitor for the weak BA instance with the given tag.
// quorumOverride mirrors wba.Config.QuorumOverride (0 = the paper's).
func NewWBA(params types.Params, crypto *proto.Crypto, tag string, quorumOverride int) *WBA {
	quorum := params.Quorum()
	if quorumOverride > 0 {
		quorum = quorumOverride
	}
	return &WBA{
		tag:     tag,
		phases:  params.T + 1,
		scheme:  crypto.Threshold(quorum),
		votes:   make(map[sigKey]types.Value),
		decides: make(map[sigKey]types.Value),
	}
}

// OnSend is the sim.Config.OnSend hook.
func (o *WBA) OnSend(_ types.Tick, m sim.Message, honest bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch p := m.Payload.(type) {
	case wba.Vote:
		if honest {
			o.checkOnePerPhase(o.votes, m.From, p.Phase, p.V, "vote")
		}
	case wba.Decide:
		if honest {
			o.checkOnePerPhase(o.decides, m.From, p.Phase, p.V, "decide share")
		}
	case wba.Finalized:
		o.checkFinalize(p.V, p.Phase, p.Cert, honest, m.From)
	case wba.Help:
		o.checkFinalize(p.V, p.ProofPhase, p.Proof, honest, m.From)
	case wba.FallbackCert:
		if p.Proof != nil {
			o.checkFinalize(p.V, p.ProofPhase, p.Proof, honest, m.From)
		}
	}
}

// checkOnePerPhase flags an honest process signing two different values in
// one phase.
func (o *WBA) checkOnePerPhase(seen map[sigKey]types.Value, from types.ProcessID, phase int, v types.Value, what string) {
	k := sigKey{from: from, phase: phase}
	if prev, ok := seen[k]; ok {
		if !prev.Equal(v) {
			o.violate("honest %v signed two %ss in phase %d: %v and %v", from, what, phase, prev, v)
		}
		return
	}
	seen[k] = v.Clone()
}

// checkFinalize verifies a circulating finalize certificate and enforces
// global uniqueness of the certified value.
func (o *WBA) checkFinalize(v types.Value, phase int, cert *threshold.Cert, honest bool, from types.ProcessID) {
	if cert == nil || phase < 1 || phase > o.phases ||
		!o.scheme.Verify(wba.DecideBase(o.tag, phase, v), cert) {
		if honest {
			o.violate("honest %v emitted an invalid finalize certificate for %v@%d", from, v, phase)
		}
		return // forged garbage from the adversary: uninteresting
	}
	if o.finalizedValue == nil {
		o.finalizedValue = v.Clone()
		return
	}
	if !o.finalizedValue.Equal(v) {
		o.violate("two finalize-certified values circulate: %v and %v (Lemma 15 violated)",
			o.finalizedValue, v)
	}
}

func (o *WBA) violate(format string, args ...any) {
	o.violations = append(o.violations, fmt.Sprintf(format, args...))
}

// Violations returns the flagged invariant breaches.
func (o *WBA) Violations() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, len(o.violations))
	copy(out, o.violations)
	return out
}

// FinalizedValue returns the unique certified value seen so far (nil if
// none yet).
func (o *WBA) FinalizedValue() types.Value {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.finalizedValue.Clone()
}

// StrongBA monitors one Algorithm 5 instance: at most one n-of-n decide
// certificate value may circulate, and honest processes sign at most one
// input share and one decide share.
type StrongBA struct {
	mu     sync.Mutex
	tag    string
	full   *threshold.Scheme
	seen   types.Value
	inputs map[types.ProcessID]types.Value
	decs   map[types.ProcessID]types.Value

	violations []string
}

// NewStrongBA builds a monitor for the strong BA instance with the tag.
func NewStrongBA(params types.Params, crypto *proto.Crypto, tag string) *StrongBA {
	return &StrongBA{
		tag:    tag,
		full:   crypto.Threshold(params.N),
		inputs: make(map[types.ProcessID]types.Value),
		decs:   make(map[types.ProcessID]types.Value),
	}
}

// OnSend is the sim.Config.OnSend hook.
func (o *StrongBA) OnSend(_ types.Tick, m sim.Message, honest bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch p := m.Payload.(type) {
	case strongba.InputShare:
		if honest {
			o.checkOne(o.inputs, m.From, p.V, "input share")
		}
	case strongba.DecideShare:
		if honest {
			o.checkOne(o.decs, m.From, p.V, "decide share")
		}
	case strongba.DecideMsg:
		o.checkDecide(p.V, p.Cert, honest, m.From)
	case strongba.Fallback:
		if p.Proof != nil {
			o.checkDecide(p.V, p.Proof, honest, m.From)
		}
	}
}

func (o *StrongBA) checkOne(seen map[types.ProcessID]types.Value, from types.ProcessID, v types.Value, what string) {
	if prev, ok := seen[from]; ok {
		if !prev.Equal(v) {
			o.violations = append(o.violations,
				fmt.Sprintf("honest %v signed two %ss: %v and %v", from, what, prev, v))
		}
		return
	}
	seen[from] = v.Clone()
}

func (o *StrongBA) checkDecide(v types.Value, cert *threshold.Cert, honest bool, from types.ProcessID) {
	if cert == nil || !o.full.Verify(strongba.DecideBaseFor(o.tag, v), cert) {
		if honest {
			o.violations = append(o.violations,
				fmt.Sprintf("honest %v emitted an invalid decide certificate for %v", from, v))
		}
		return
	}
	if o.seen == nil {
		o.seen = v.Clone()
		return
	}
	if !o.seen.Equal(v) {
		o.violations = append(o.violations,
			fmt.Sprintf("two decide-certified values circulate: %v and %v", o.seen, v))
	}
}

// Violations returns the flagged invariant breaches.
func (o *StrongBA) Violations() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, len(o.violations))
	copy(out, o.violations)
	return out
}
