package oracle

import (
	"strings"
	"testing"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/adversary/attacks"
	"adaptiveba/internal/core/strongba"
	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func setup(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("oracle-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

// runMonitored executes a weak BA run with the oracle attached.
func runMonitored(t *testing.T, n, quorumOverride int, adv sim.Adversary) (*sim.Result, *WBA) {
	t.Helper()
	crypto, params := setup(t, n)
	mon := NewWBA(params, crypto, "o", quorumOverride)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return wba.NewMachine(wba.Config{
				Params: params, Crypto: crypto, ID: id,
				Input: types.Value("v"), Predicate: valid.NonBottom(),
				Tag: "o", QuorumOverride: quorumOverride,
			})
		},
		Adversary: adv,
		MaxTicks:  4000,
		OnSend:    mon.OnSend,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, mon
}

func TestCleanRunHasNoViolations(t *testing.T) {
	res, mon := runMonitored(t, 9, 0, nil)
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	if v := mon.Violations(); len(v) != 0 {
		t.Fatalf("violations in a clean run: %v", v)
	}
	if fv := mon.FinalizedValue(); !fv.Equal(types.Value("v")) {
		t.Errorf("oracle saw finalized value %v", fv)
	}
}

func TestAdversarialRunsStayInvariantClean(t *testing.T) {
	advs := map[string]sim.Adversary{
		"crash":  adversary.NewCrash(1, 2, 3),
		"replay": adversary.NewReplay(3, 300, 2, 6),
		"spam":   attacks.NewWBAPhaseSpam(types.Value("v"), 1, 2),
	}
	for name, adv := range advs {
		t.Run(name, func(t *testing.T) {
			res, mon := runMonitored(t, 9, 0, adv)
			if !res.AllDecided() {
				t.Fatal("not all decided")
			}
			if v := mon.Violations(); len(v) != 0 {
				t.Fatalf("violations: %v", v)
			}
		})
	}
}

// TestOracleDetectsSplitBrain validates the oracle itself: under the
// naive t+1 quorum, the split-vote attack produces two finalize
// certificates, and the monitor must catch it on the wire.
func TestOracleDetectsSplitBrain(t *testing.T) {
	params, _ := types.NewParams(9)
	ids := []types.ProcessID{1}
	for i := params.N - 1; len(ids) < params.T; i-- {
		ids = append(ids, types.ProcessID(i))
	}
	adv := attacks.NewWBASplitVote("o", params.SmallQuorum(), types.Value("v1"), types.Value("v2"), ids...)
	_, mon := runMonitored(t, 9, params.SmallQuorum(), adv)
	violations := mon.Violations()
	found := false
	for _, v := range violations {
		if strings.Contains(v, "Lemma 15") {
			found = true
		}
	}
	if !found {
		t.Fatalf("oracle missed the split-brain: %v", violations)
	}
}

// TestOracleIgnoresForgedCerts: adversarial garbage certificates are not
// violations (only honest processes are held to the invariant).
func TestOracleIgnoresForgedCerts(t *testing.T) {
	crypto, params := setup(t, 9)
	mon := NewWBA(params, crypto, "o", 0)
	forged := &threshold.Cert{K: params.Quorum(), Signers: types.NewBitSet(9), Tag: []byte("junk")}
	mon.OnSend(0, sim.Message{From: 8, To: 0, Payload: wba.Finalized{Phase: 1, V: types.Value("x"), Cert: forged}}, false)
	if v := mon.Violations(); len(v) != 0 {
		t.Errorf("forged cert flagged: %v", v)
	}
	// The same garbage from an HONEST process is a violation.
	mon.OnSend(0, sim.Message{From: 2, To: 0, Payload: wba.Finalized{Phase: 1, V: types.Value("x"), Cert: forged}}, true)
	if v := mon.Violations(); len(v) != 1 {
		t.Errorf("honest invalid cert not flagged: %v", v)
	}
}

func TestOracleFlagsHonestDoubleVote(t *testing.T) {
	crypto, params := setup(t, 9)
	mon := NewWBA(params, crypto, "o", 0)
	mon.OnSend(1, sim.Message{From: 3, To: 1, Payload: wba.Vote{Phase: 2, V: types.Value("a")}}, true)
	mon.OnSend(1, sim.Message{From: 3, To: 1, Payload: wba.Vote{Phase: 2, V: types.Value("a")}}, true) // duplicate ok
	mon.OnSend(1, sim.Message{From: 3, To: 1, Payload: wba.Vote{Phase: 3, V: types.Value("b")}}, true) // other phase ok
	if v := mon.Violations(); len(v) != 0 {
		t.Fatalf("false positives: %v", v)
	}
	mon.OnSend(1, sim.Message{From: 3, To: 1, Payload: wba.Vote{Phase: 2, V: types.Value("b")}}, true)
	if v := mon.Violations(); len(v) != 1 || !strings.Contains(v[0], "two votes") {
		t.Errorf("double vote not flagged: %v", v)
	}
	// Byzantine double votes are expected, not violations.
	mon.OnSend(1, sim.Message{From: 7, To: 1, Payload: wba.Vote{Phase: 2, V: types.Value("a")}}, false)
	mon.OnSend(1, sim.Message{From: 7, To: 1, Payload: wba.Vote{Phase: 2, V: types.Value("b")}}, false)
	if v := mon.Violations(); len(v) != 1 {
		t.Errorf("byzantine votes flagged: %v", v)
	}
}

func TestStrongBAMonitorCleanRuns(t *testing.T) {
	crypto, params := setup(t, 9)
	mon := NewStrongBA(params, crypto, "s")
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m, err := strongba.NewMachine(strongba.Config{
				Params: params, Crypto: crypto, ID: id, Input: types.One, Tag: "s",
			})
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		Adversary: adversary.NewCrash(3),
		MaxTicks:  2000,
		OnSend:    mon.OnSend,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	if v := mon.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestStrongBAMonitorFlagsDoubleShares(t *testing.T) {
	crypto, params := setup(t, 9)
	mon := NewStrongBA(params, crypto, "s")
	mon.OnSend(0, sim.Message{From: 2, Payload: strongba.InputShare{V: types.One}}, true)
	mon.OnSend(0, sim.Message{From: 2, Payload: strongba.InputShare{V: types.Zero}}, true)
	if v := mon.Violations(); len(v) != 1 {
		t.Errorf("double input share not flagged: %v", v)
	}
}
