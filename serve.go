// Public service surface: the replicated KV service (internal/service)
// exposed with the package's API conventions — context entry points,
// functional options, and typed sentinel errors. ServeContext starts a
// server whose writes commit through the batched ACS agreement rounds
// and whose large values take the triangle architecture (off-chain
// content-addressed blobs, constant-size anchors through agreement, a
// hash-chained audit log binding the two); DialContext opens a client
// session with request dedup on the server side.
package adaptiveba

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"adaptiveba/internal/kv"
	"adaptiveba/internal/service"
)

// Service-surface sentinels. ErrService is the broad class every
// service failure matches; the refined sentinels chain onto it, so
// errors.Is(err, ErrTampered) implies errors.Is(err, ErrService).
var (
	// ErrService is the broad service failure class.
	ErrService = errors.New("adaptiveba: service error")
	// ErrTampered reports tamper evidence: a stored blob or audit-log
	// record whose bytes no longer match their digest or chain.
	ErrTampered error = &sentinel{"adaptiveba: tamper evidence", ErrService}
	// ErrDuplicate reports a (client, seq) request that fell behind the
	// server's dedup window — too old to replay, refused rather than
	// risk re-execution.
	ErrDuplicate error = &sentinel{"adaptiveba: duplicate request outside dedup window", ErrService}
	// ErrSnapshotMismatch reports a state snapshot whose embedded state
	// hash does not match its contents on restore.
	ErrSnapshotMismatch error = &sentinel{"adaptiveba: snapshot state hash mismatch", ErrService}
	// ErrKeyNotFound reports a Get of a key absent from replicated state.
	ErrKeyNotFound error = &sentinel{"adaptiveba: key not found", ErrService}
)

// mapServiceErr lifts internal service errors into the public tree.
func mapServiceErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, service.ErrTampered):
		return fmt.Errorf("%w: %w", ErrTampered, err)
	case errors.Is(err, service.ErrDuplicate):
		return fmt.Errorf("%w: %w", ErrDuplicate, err)
	case errors.Is(err, kv.ErrSnapshotMismatch):
		return fmt.Errorf("%w: %w", ErrSnapshotMismatch, err)
	case errors.Is(err, service.ErrNotFound):
		return fmt.Errorf("%w: %w", ErrKeyNotFound, err)
	case errors.Is(err, service.ErrConfig):
		return fmt.Errorf("%w: %w", ErrOptions, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	default:
		return fmt.Errorf("%w: %w", ErrService, err)
	}
}

// ServeOption configures a service started by ServeContext.
type ServeOption func(*serveConfig)

type serveConfig struct {
	core        service.Config
	dedupWindow int
}

// WithBlobDir roots the content-addressed blob store (required). Values
// above the inline threshold are stored here and only their 32-byte
// anchors ride through agreement.
func WithBlobDir(dir string) ServeOption {
	return func(c *serveConfig) { c.core.BlobDir = dir }
}

// WithAuditPath locates the hash-chained audit log file (default
// <blobdir>/audit.log).
func WithAuditPath(path string) ServeOption {
	return func(c *serveConfig) { c.core.AuditPath = path }
}

// WithSnapshotEvery snapshots the replicated state and truncates the
// in-memory log each time k committed entries accumulate (default 1024;
// negative disables).
func WithSnapshotEvery(k int) ServeOption {
	return func(c *serveConfig) { c.core.SnapshotEvery = k }
}

// WithDedupWindow sets how many responses per client session the server
// retains for replay (default 64). A retried request inside the window
// gets its original response back without re-execution; one behind the
// window fails with ErrDuplicate.
func WithDedupWindow(w int) ServeOption {
	return func(c *serveConfig) { c.dedupWindow = w }
}

// WithReplicas sets the service's replica count n (default 4).
func WithReplicas(n int) ServeOption {
	return func(c *serveConfig) { c.core.N = n }
}

// WithCrashFaults crashes f replicas for the service's agreement rounds
// (0 ≤ f ≤ t), exercising the adaptive cost under real faults.
func WithCrashFaults(f int) ServeOption {
	return func(c *serveConfig) { c.core.F = f }
}

// WithInlineMax sets the largest value committed inline through
// agreement (default 256 bytes); larger values are anchored through the
// blob store.
func WithInlineMax(n int) ServeOption {
	return func(c *serveConfig) { c.core.InlineMax = n }
}

// WithCommitBatch bounds commands per proposer per agreement round
// (default 8).
func WithCommitBatch(b int) ServeOption {
	return func(c *serveConfig) { c.core.Batch = b }
}

// WithServeSeed seeds the service's agreement rounds (round r runs with
// seed+r).
func WithServeSeed(seed int64) ServeOption {
	return func(c *serveConfig) { c.core.Seed = seed }
}

// WithMeasuredBytes meters encoded payload bytes through the agreement
// rounds (ServiceStats.Bytes); the words metric alone weighs every
// value as one word regardless of size.
func WithMeasuredBytes() ServeOption {
	return func(c *serveConfig) { c.core.MeasureBytes = true }
}

// ServiceStats reports the service's accumulated agreement-side costs.
type ServiceStats struct {
	// Rounds is the number of committed agreement rounds; Committed the
	// number of committed commands.
	Rounds    int
	Committed int
	// Words / Messages / Bytes are honest-send totals across all rounds
	// (Bytes only with WithMeasuredBytes).
	Words    int64
	Messages int64
	Bytes    int64
	// Snapshots counts snapshot+truncate events; Truncated the log
	// entries they dropped.
	Snapshots int
	Truncated int
}

// Service is a running replicated KV service.
type Service struct {
	srv  *service.Server
	quit chan struct{}
	once sync.Once
	err  error
}

// ServeContext starts the replicated KV service listening on addr (use
// "127.0.0.1:0" to bind an ephemeral port; Addr reports the bound
// address). WithBlobDir is required — it roots the off-chain blob store
// of the triangle architecture. Cancelling the context shuts the
// service down; Close does the same explicitly.
func ServeContext(ctx context.Context, addr string, opts ...ServeOption) (*Service, error) {
	cfg := serveConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.core.BlobDir == "" {
		return nil, fmt.Errorf("%w: WithBlobDir is required", ErrOptions)
	}
	if cfg.core.AuditPath == "" {
		cfg.core.AuditPath = filepath.Join(cfg.core.BlobDir, "audit.log")
	}
	srv, err := service.NewServer(service.ServerConfig{
		Core:        cfg.core,
		Addr:        addr,
		DedupWindow: cfg.dedupWindow,
	})
	if err != nil {
		return nil, mapServiceErr(err)
	}
	s := &Service{srv: srv, quit: make(chan struct{})}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.Close()
			case <-s.quit:
			}
		}()
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Service) Addr() string { return s.srv.Addr() }

// Stats returns the service's accumulated agreement-side cost counters.
// The read is serialized with the commit loop, so the numbers are a
// consistent snapshot — though concurrent commits may move them the
// moment it returns.
func (s *Service) Stats() ServiceStats {
	st := s.srv.Stats()
	return ServiceStats{
		Rounds: st.Rounds, Committed: st.Committed,
		Words: st.Words, Messages: st.Messages, Bytes: st.Bytes,
		Snapshots: st.Snapshots, Truncated: st.Truncated,
	}
}

// Close shuts the service down. Safe to call more than once (and
// concurrently with a context-driven shutdown).
func (s *Service) Close() error {
	s.once.Do(func() {
		close(s.quit)
		s.err = mapServiceErr(s.srv.Close())
	})
	return s.err
}

// DialOption tunes a client session opened by DialContext.
type DialOption func(*service.ClientConfig)

// WithRequestTimeout bounds one attempt's wait for a response (default
// 2s); a timed-out request is retried with the same sequence number, so
// the server's dedup window absorbs the loss without re-execution.
func WithRequestTimeout(d time.Duration) DialOption {
	return func(c *service.ClientConfig) { c.Timeout = d }
}

// WithRetries sets how many times a timed-out request is re-sent
// (default 4).
func WithRetries(n int) DialOption {
	return func(c *service.ClientConfig) { c.Retries = n }
}

// Client is one session against a running Service. Not goroutine-safe:
// one request is in flight at a time (use one Client per goroutine).
type Client struct {
	c *service.Client
}

// DialContext connects to a service, performs the session handshake,
// and returns a client with a server-assigned session ID.
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, mapServiceErr(err)
		}
	}
	var cfg service.ClientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	c, err := service.Dial(addr, cfg)
	if err != nil {
		return nil, mapServiceErr(err)
	}
	return &Client{c: c}, nil
}

// Close tears the session down.
func (c *Client) Close() error { return c.c.Close() }

// Put commits key=value through the agreement rounds. Values above the
// inline threshold never enter agreement: they are stored in the blob
// store and only their content anchor is committed, so the per-request
// word cost stays constant regardless of payload size.
func (c *Client) Put(ctx context.Context, key, value []byte) error {
	if len(value) > service.MaxValue {
		return fmt.Errorf("%w: value of %d bytes exceeds the %d-byte limit",
			ErrInputs, len(value), service.MaxValue)
	}
	resp, err := c.c.Do(ctx, service.ReqPut, key, value)
	if err != nil {
		return mapServiceErr(err)
	}
	return mapServiceErr(service.ResponseErr(resp))
}

// Del commits a delete through the agreement rounds.
func (c *Client) Del(ctx context.Context, key []byte) error {
	resp, err := c.c.Do(ctx, service.ReqDel, key, nil)
	if err != nil {
		return mapServiceErr(err)
	}
	return mapServiceErr(service.ResponseErr(resp))
}

// Get reads a key from replicated state. Anchored values resolve
// through the blob store with content verification: a tampered blob
// fails with ErrTampered rather than returning corrupt bytes.
func (c *Client) Get(ctx context.Context, key []byte) ([]byte, error) {
	resp, err := c.c.Do(ctx, service.ReqGet, key, nil)
	if err != nil {
		return nil, mapServiceErr(err)
	}
	if err := service.ResponseErr(resp); err != nil {
		return nil, mapServiceErr(err)
	}
	return resp.Value, nil
}

// VerifyReport summarizes the server's end-to-end tamper-evidence walk.
type VerifyReport struct {
	// Entries is the audit-chain length; Blobs the stored blob count.
	Entries int
	Blobs   int
	// ChainOK reports an intact hash chain; BadBlobs counts anchored
	// blobs whose bytes no longer match their digest, with the audit
	// sequence numbers that anchor them in BadSeqs.
	ChainOK  bool
	BadBlobs int
	BadSeqs  []int
	// StateHash digests the replicated KV state.
	StateHash string
}

// OK reports a fully clean verification.
func (r *VerifyReport) OK() bool { return r != nil && r.ChainOK && r.BadBlobs == 0 }

// Verify asks the server to walk the audit hash chain end to end and
// re-hash every anchored blob. A single flipped byte anywhere in the
// blob store or the audit log surfaces here as ErrTampered; the report
// is returned alongside the error and says what broke.
func (c *Client) Verify(ctx context.Context) (*VerifyReport, error) {
	resp, err := c.c.Do(ctx, service.ReqVerify, nil, nil)
	if err != nil {
		return nil, mapServiceErr(err)
	}
	var rep *VerifyReport
	if resp.Report != nil {
		rep = &VerifyReport{
			Entries: resp.Report.Entries, Blobs: resp.Report.Blobs,
			ChainOK: resp.Report.ChainOK, BadBlobs: resp.Report.BadBlobs,
			BadSeqs: resp.Report.BadSeqs, StateHash: resp.Report.StateHash,
		}
	}
	return rep, mapServiceErr(service.ResponseErr(resp))
}
