package adaptiveba

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adaptiveba/internal/blob"
	"adaptiveba/internal/kv"
	"adaptiveba/internal/service"
)

func startService(t *testing.T, opts ...ServeOption) (*Service, string) {
	t.Helper()
	dir := t.TempDir()
	blobDir := filepath.Join(dir, "blobs")
	opts = append([]ServeOption{WithBlobDir(blobDir), WithServeSeed(5), WithInlineMax(64)}, opts...)
	svc, err := ServeContext(context.Background(), "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, blobDir
}

func TestServePutGetVerify(t *testing.T) {
	svc, _ := startService(t)
	ctx := context.Background()
	c, err := DialContext(ctx, svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	small := []byte("small")
	large := bytes.Repeat([]byte("p"), 500) // above InlineMax: anchored
	if err := c.Put(ctx, []byte("a"), small); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, []byte("b"), large); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get(ctx, []byte("a")); err != nil || !bytes.Equal(v, small) {
		t.Fatalf("get a: %q %v", v, err)
	}
	if v, err := c.Get(ctx, []byte("b")); err != nil || !bytes.Equal(v, large) {
		t.Fatalf("get b (anchored): %v", err)
	}
	if _, err := c.Get(ctx, []byte("missing")); !errors.Is(err, ErrKeyNotFound) || !errors.Is(err, ErrService) {
		t.Fatalf("want ErrKeyNotFound in the ErrService tree, got %v", err)
	}
	if err := c.Del(ctx, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, []byte("a")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("deleted key still readable: %v", err)
	}
	rep, err := c.Verify(ctx)
	if err != nil || !rep.OK() {
		t.Fatalf("verify: %v (%+v)", err, rep)
	}
	st := svc.Stats()
	if st.Committed < 3 || st.Words == 0 {
		t.Fatalf("stats not accumulating: %+v", st)
	}
}

// TestServeTamperVisibleToClient: a flipped byte in the server's blob
// store surfaces to the remote client as the public ErrTampered.
func TestServeTamperVisibleToClient(t *testing.T) {
	svc, blobDir := startService(t)
	ctx := context.Background()
	c, err := DialContext(ctx, svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	large := bytes.Repeat([]byte("x"), 300)
	if err := c.Put(ctx, []byte("k"), large); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(blobDir, blob.Sum(large).String())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[7] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Verify(ctx)
	if !errors.Is(err, ErrTampered) || !errors.Is(err, ErrService) {
		t.Fatalf("want public ErrTampered, got %v", err)
	}
	if rep == nil || rep.BadBlobs != 1 {
		t.Fatalf("report blames %+v, want 1 bad blob", rep)
	}
	if _, err := c.Get(ctx, []byte("k")); !errors.Is(err, ErrTampered) {
		t.Fatalf("get of tampered value: want ErrTampered, got %v", err)
	}
}

func TestServeSnapshotOption(t *testing.T) {
	svc, _ := startService(t, WithSnapshotEvery(2))
	ctx := context.Background()
	c, err := DialContext(ctx, svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		if err := c.Put(ctx, []byte{byte(i)}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Force a read so every buffered write is flushed before we look.
	if _, err := c.Get(ctx, []byte{0}); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Snapshots == 0 || st.Truncated == 0 {
		t.Fatalf("WithSnapshotEvery(2) never snapshotted: %+v", st)
	}
}

func TestServeOptionValidation(t *testing.T) {
	if _, err := ServeContext(context.Background(), "127.0.0.1:0"); !errors.Is(err, ErrOptions) {
		t.Fatalf("missing WithBlobDir: want ErrOptions, got %v", err)
	}
	dir := t.TempDir()
	_, err := ServeContext(context.Background(), "127.0.0.1:0",
		WithBlobDir(filepath.Join(dir, "b")), WithCrashFaults(99))
	if !errors.Is(err, ErrOptions) {
		t.Fatalf("absurd fault count: want ErrOptions, got %v", err)
	}
}

func TestServeContextShutdown(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	svc, err := ServeContext(ctx, "127.0.0.1:0", WithBlobDir(filepath.Join(dir, "b")))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := DialContext(context.Background(), svc.Addr(),
			WithRequestTimeout(100*time.Millisecond), WithRetries(0)); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service still accepting connections after context cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := svc.Close(); err != nil { // idempotent after ctx-driven close
		t.Fatalf("second close: %v", err)
	}
}

func TestServeClientContextCancel(t *testing.T) {
	svc, _ := startService(t)
	c, err := DialContext(context.Background(), svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled put: want ErrCanceled, got %v", err)
	}
}

// TestServiceSentinelTree pins the error-tree contract: every refined
// service sentinel matches ErrService, and internal errors lift into
// the public identities.
func TestServiceSentinelTree(t *testing.T) {
	for name, err := range map[string]error{
		"ErrTampered":         ErrTampered,
		"ErrDuplicate":        ErrDuplicate,
		"ErrSnapshotMismatch": ErrSnapshotMismatch,
		"ErrKeyNotFound":      ErrKeyNotFound,
	} {
		if !errors.Is(err, ErrService) {
			t.Errorf("%s does not match ErrService", name)
		}
	}
	cases := []struct {
		in   error
		want error
	}{
		{service.ErrTampered, ErrTampered},
		{service.ErrDuplicate, ErrDuplicate},
		{service.ErrNotFound, ErrKeyNotFound},
		{kv.ErrSnapshotMismatch, ErrSnapshotMismatch},
		{context.Canceled, ErrCanceled},
	}
	for _, tc := range cases {
		got := mapServiceErr(tc.in)
		if !errors.Is(got, tc.want) {
			t.Errorf("mapServiceErr(%v) = %v, want %v", tc.in, got, tc.want)
		}
		if !errors.Is(got, tc.in) {
			t.Errorf("mapServiceErr(%v) lost the original identity", tc.in)
		}
	}
	if mapServiceErr(service.ErrConfig) == nil || !errors.Is(mapServiceErr(service.ErrConfig), ErrOptions) {
		t.Error("service config errors must lift into ErrOptions")
	}
	if !errors.Is(mapServiceErr(service.ErrUnavailable), ErrService) {
		t.Error("unclassified service errors must still match ErrService")
	}
}
