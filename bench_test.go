// Benchmark harness: one benchmark family per table/figure of the paper
// (DESIGN.md §3 maps each to its experiment id). Every benchmark runs
// full protocol executions on the deterministic simulator and reports the
// paper's cost measure — words sent by correct processes — as the
// "words/run" metric next to the usual time/op.
//
//	go test -bench=. -benchmem
//
// The same data in table form: go run ./cmd/adaptiveba-bench -all
package adaptiveba

import (
	"fmt"
	"testing"

	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/harness"
)

// benchSpec runs one spec b.N times and reports the word complexity.
func benchSpec(b *testing.B, spec harness.Spec) {
	b.Helper()
	var words, msgs int64
	for i := 0; i < b.N; i++ {
		o, err := harness.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !o.Decided || !o.Agreement {
			b.Fatalf("run violated correctness: decided=%v agreement=%v", o.Decided, o.Agreement)
		}
		words, msgs = o.Words, o.Messages
	}
	b.ReportMetric(float64(words), "words/run")
	b.ReportMetric(float64(msgs), "msgs/run")
	b.ReportMetric(float64(words)/float64(spec.N), "words/proc")
}

// BenchmarkTable1BB regenerates Table 1's Byzantine Broadcast row:
// O(n(f+1)) words, linear at f=0, worst case exercised by phase-spamming
// Byzantine leaders (experiment t1-bb).
func BenchmarkTable1BB(b *testing.B) {
	for _, n := range []int{11, 41, 101} {
		b.Run(fmt.Sprintf("f0/n=%d", n), func(b *testing.B) {
			benchSpec(b, harness.Spec{Protocol: harness.ProtocolBB, N: n})
		})
	}
	for _, f := range []int{2, 6, 10} {
		b.Run(fmt.Sprintf("spam/n=41/f=%d", f), func(b *testing.B) {
			benchSpec(b, harness.Spec{Protocol: harness.ProtocolBB, N: 41, F: f, Fault: harness.FaultSpam})
		})
	}
	b.Run("fallback-regime/n=41/f=12", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolBB, N: 41, F: 12})
	})
}

// BenchmarkTable1StrongBA regenerates Table 1's strong BA row: O(n) words
// at f=0 (Lemma 8), quadratic+ otherwise (experiment t1-strongba).
func BenchmarkTable1StrongBA(b *testing.B) {
	for _, n := range []int{11, 41, 101, 201} {
		b.Run(fmt.Sprintf("f0/n=%d", n), func(b *testing.B) {
			benchSpec(b, harness.Spec{Protocol: harness.ProtocolStrongBA, N: n})
		})
	}
	b.Run("fallback/n=21/f=1", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolStrongBA, N: 21, F: 1})
	})
	b.Run("fallback/n=21/f=10", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolStrongBA, N: 21, F: 10})
	})
}

// BenchmarkTable1WeakBA regenerates Table 1's weak BA row: O(n(f+1))
// words with the fallback threshold at (n-t-1)/2 (experiment t1-wba).
func BenchmarkTable1WeakBA(b *testing.B) {
	for _, n := range []int{11, 41, 101} {
		b.Run(fmt.Sprintf("f0/n=%d", n), func(b *testing.B) {
			benchSpec(b, harness.Spec{Protocol: harness.ProtocolWBA, N: n})
		})
	}
	for _, f := range []int{4, 10} {
		b.Run(fmt.Sprintf("spam/n=41/f=%d", f), func(b *testing.B) {
			benchSpec(b, harness.Spec{Protocol: harness.ProtocolWBA, N: 41, F: f, Fault: harness.FaultSpam})
		})
	}
	b.Run("fallback-regime/n=41/f=11", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolWBA, N: 41, F: 11})
	})
}

// BenchmarkFigure1Composition exercises the full composition of Figure 1
// (BB over weak BA over A_fallback) and reports the per-layer split.
func BenchmarkFigure1Composition(b *testing.B) {
	for _, f := range []int{0, 4, 12} {
		b.Run(fmt.Sprintf("n=41/f=%d", f), func(b *testing.B) {
			var rootWords, wbaWords, fbWords int64
			for i := 0; i < b.N; i++ {
				o, err := harness.Run(harness.Spec{Protocol: harness.ProtocolBB, N: 41, F: f})
				if err != nil {
					b.Fatal(err)
				}
				rootWords, wbaWords, fbWords = 0, 0, 0
				for layer, s := range o.ByLayer {
					switch {
					case layer == "(root)":
						rootWords += s.Words
					case layer == "wba":
						wbaWords += s.Words
					default:
						fbWords += s.Words
					}
				}
			}
			b.ReportMetric(float64(rootWords), "bb-words/run")
			b.ReportMetric(float64(wbaWords), "wba-words/run")
			b.ReportMetric(float64(fbWords), "fallback-words/run")
		})
	}
}

// BenchmarkAdaptivity compares the adaptive BB against the quadratic
// baselines at the same (n, f) (experiment adapt).
func BenchmarkAdaptivity(b *testing.B) {
	for _, f := range []int{0, 8} {
		b.Run(fmt.Sprintf("adaptive-bb/f=%d", f), func(b *testing.B) {
			benchSpec(b, harness.Spec{Protocol: harness.ProtocolBB, N: 41, F: f, Fault: harness.FaultSpam})
		})
		b.Run(fmt.Sprintf("echo-bb/f=%d", f), func(b *testing.B) {
			benchSpec(b, harness.Spec{Protocol: harness.ProtocolEchoBB, N: 41, F: f})
		})
	}
}

// BenchmarkBaselineDolevStrong regenerates the Section 4 contrast: the
// classic protocol pays Θ(n²)+ words even failure-free (experiment dr).
func BenchmarkBaselineDolevStrong(b *testing.B) {
	for _, n := range []int{11, 41, 101} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSpec(b, harness.Spec{Protocol: harness.ProtocolDolevStrong, N: n})
		})
	}
}

// BenchmarkAblationPhaseCount compares Algorithm 3's t+1 phases against
// the n phases of the Section 6 prose (experiment ablate-phases).
func BenchmarkAblationPhaseCount(b *testing.B) {
	b.Run("t+1-phases", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolWBA, N: 41, F: 4})
	})
	b.Run("n-phases", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolWBA, N: 41, F: 4, WBAPhases: 41})
	})
}

// BenchmarkAblationSilentPhases shows the silent-phase rule IS the
// adaptivity: without it the cost reverts to Θ(n·t) (experiment
// ablate-silent).
func BenchmarkAblationSilentPhases(b *testing.B) {
	b.Run("silent-on", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolWBA, N: 41})
	})
	b.Run("silent-off", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolWBA, N: 41, DisableSilentPhases: true})
	})
}

// BenchmarkAblationCertEncoding compares the word-equal but byte-unequal
// certificate encodings end to end (experiment ablate-cert).
func BenchmarkAblationCertEncoding(b *testing.B) {
	b.Run("compact", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolWBA, N: 21, F: 2})
	})
	b.Run("aggregate", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolWBA, N: 21, F: 2, CertMode: threshold.ModeAggregate})
	})
}

// BenchmarkAblationQuorum measures the defended configuration under the
// split-vote attack (the undefended one violates safety and is asserted
// in the test suite, not benchmarked — see experiment ablate-quorum).
func BenchmarkAblationQuorum(b *testing.B) {
	b.Run("paper-quorum-under-attack", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolWBA, N: 9, F: 4, Fault: harness.FaultSpam})
	})
}

// BenchmarkSignatureSchemes contrasts the simulation-grade HMAC scheme
// with real Ed25519 signatures on the same protocol run.
func BenchmarkSignatureSchemes(b *testing.B) {
	b.Run("hmac", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolBB, N: 21, F: 2})
	})
	b.Run("ed25519", func(b *testing.B) {
		benchSpec(b, harness.Spec{Protocol: harness.ProtocolBB, N: 21, F: 2, Ed25519: true})
	})
}
