package adaptiveba

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestBroadcastFailureFree(t *testing.T) {
	res, err := Broadcast(Options{N: 9}, []byte("block-42"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || !res.Agreement {
		t.Fatalf("run failed: %+v", res)
	}
	if !bytes.Equal(res.Decision, []byte("block-42")) {
		t.Errorf("decision %q", res.Decision)
	}
	if res.Bottom {
		t.Error("bottom flagged for a real decision")
	}
	if res.Words <= 0 || res.Words > int64(14*9) {
		t.Errorf("failure-free words = %d, want small linear", res.Words)
	}
}

func TestBroadcastWithCrashes(t *testing.T) {
	res, err := Broadcast(Options{N: 9, Faults: 2}, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || !res.Agreement {
		t.Fatalf("run failed: %+v", res)
	}
	if !bytes.Equal(res.Decision, []byte("v")) {
		t.Errorf("validity violated: %q", res.Decision)
	}
}

func TestBroadcastCrashedSender(t *testing.T) {
	res, err := Broadcast(Options{N: 9, Faults: 1, Pattern: FaultCrashLeader}, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bottom || res.Decision != nil {
		t.Errorf("want ⊥ for a crashed sender, got %q", res.Decision)
	}
	if !res.Agreement {
		t.Error("agreement violated")
	}
}

func TestWeakAgreeUnanimous(t *testing.T) {
	inputs := make([][]byte, 9)
	for i := range inputs {
		inputs[i] = []byte("same")
	}
	res, err := WeakAgree(Options{N: 9}, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Decision, []byte("same")) {
		t.Errorf("decision %q", res.Decision)
	}
}

func TestWeakAgreePredicate(t *testing.T) {
	inputs := make([][]byte, 5)
	for i := range inputs {
		inputs[i] = []byte(fmt.Sprintf("tx:%d", i))
	}
	pred := func(v []byte) bool { return bytes.HasPrefix(v, []byte("tx:")) }
	res, err := WeakAgree(Options{N: 5}, inputs, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.AllDecided {
		t.Fatal("run failed")
	}
	if !res.Bottom && !pred(res.Decision) {
		t.Errorf("decision %q violates the predicate", res.Decision)
	}
}

func TestWeakAgreeInputValidation(t *testing.T) {
	if _, err := WeakAgree(Options{N: 5}, make([][]byte, 3), nil); !errors.Is(err, ErrInputs) {
		t.Errorf("wrong input count: %v", err)
	}
	inputs := [][]byte{[]byte("a"), nil, []byte("c"), []byte("d"), []byte("e")}
	if _, err := WeakAgree(Options{N: 5}, inputs, nil); !errors.Is(err, ErrInputs) {
		t.Errorf("empty input: %v", err)
	}
}

func TestStrongAgreeBinaryUnanimous(t *testing.T) {
	inputs := make([]bool, 9)
	for i := range inputs {
		inputs[i] = true
	}
	res, err := StrongAgreeBinary(Options{N: 9}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	bit, ok := res.Bit()
	if !ok || !bit {
		t.Errorf("Bit() = %v, %v", bit, ok)
	}
	if res.FallbackProcesses != 0 {
		t.Errorf("fallback ran in a failure-free run")
	}
	if res.Words > int64(6*9) {
		t.Errorf("failure-free strong BA words = %d, want O(n)", res.Words)
	}
}

func TestStrongAgreeBinarySplit(t *testing.T) {
	inputs := make([]bool, 9)
	for i := range inputs {
		inputs[i] = i%2 == 0
	}
	res, err := StrongAgreeBinary(Options{N: 9, Faults: 1}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.AllDecided {
		t.Fatal("run failed")
	}
}

func TestStrongAgreeInputValidation(t *testing.T) {
	if _, err := StrongAgreeBinary(Options{N: 5}, []bool{true}); !errors.Is(err, ErrInputs) {
		t.Errorf("wrong input count: %v", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Broadcast(Options{N: 1}, []byte("v")); !errors.Is(err, ErrOptions) {
		t.Errorf("tiny n: %v", err)
	}
	if _, err := Broadcast(Options{N: 5, Faults: 3}, []byte("v")); !errors.Is(err, ErrOptions) {
		t.Errorf("f > t: %v", err)
	}
	if _, err := Broadcast(Options{N: 5, Pattern: "weird"}, []byte("v")); !errors.Is(err, ErrOptions) {
		t.Errorf("bad pattern: %v", err)
	}
}

func TestTraceOption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Broadcast(Options{N: 5, Trace: &buf}, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bb/sender") {
		t.Errorf("trace missing protocol messages:\n%.300s", buf.String())
	}
}

func TestLayerWordsExposed(t *testing.T) {
	res, err := Broadcast(Options{N: 9, Faults: 1}, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for layer := range res.LayerWords {
		if strings.Contains(layer, "wba") {
			found = true
		}
	}
	if !found {
		t.Errorf("layer breakdown missing: %v", res.LayerWords)
	}
}

func TestRealSignatures(t *testing.T) {
	res, err := Broadcast(Options{N: 5, RealSignatures: true}, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Decision, []byte("v")) {
		t.Errorf("decision %q", res.Decision)
	}
}

func TestReplayPattern(t *testing.T) {
	res, err := Broadcast(Options{N: 9, Faults: 2, Pattern: FaultReplay, Seed: 5}, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !bytes.Equal(res.Decision, []byte("v")) {
		t.Errorf("replay run: agreement=%v decision=%q", res.Agreement, res.Decision)
	}
}

func TestAgreeStrongMultivalued(t *testing.T) {
	inputs := make([][]byte, 9)
	for i := range inputs {
		inputs[i] = []byte("ledger-head-7f3a")
	}
	res, err := AgreeStrong(Options{N: 9, Faults: 3}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || !res.Agreement {
		t.Fatalf("run failed: %+v", res)
	}
	if !bytes.Equal(res.Decision, []byte("ledger-head-7f3a")) {
		t.Errorf("strong unanimity violated: %q", res.Decision)
	}
	// Non-adaptive: even a small n with failures pays quadratic+ words.
	if res.Words < int64(9*9) {
		t.Errorf("suspiciously few words (%d) for the non-adaptive protocol", res.Words)
	}
}

func TestAgreeStrongValidation(t *testing.T) {
	if _, err := AgreeStrong(Options{N: 5}, make([][]byte, 2)); !errors.Is(err, ErrInputs) {
		t.Errorf("wrong count: %v", err)
	}
	inputs := [][]byte{[]byte("a"), {}, []byte("c"), []byte("d"), []byte("e")}
	if _, err := AgreeStrong(Options{N: 5}, inputs); !errors.Is(err, ErrInputs) {
		t.Errorf("empty input: %v", err)
	}
}
