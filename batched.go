// Batched replicated log: the public surface over the BKR-style ACS
// rounds of internal/acs and the engine driver internal/engine.RunACSLog.
// Where ReplicateLogContext commits one command per slot through a single
// rotating proposer, ReplicateBatchContext commits a ≥ n−t subset of n
// proposer batches per slot — n×batch commands where the single-proposer
// log commits one — while the per-command word cost is amortized by the
// batch size.
package adaptiveba

import (
	"context"
	"fmt"

	"adaptiveba/internal/engine"
	"adaptiveba/internal/types"
)

// WithBatch sets how many commands each proposer packs into its per-round
// batch for ReplicateBatchContext (default 1). Larger batches amortize
// the round's word cost over more commands without changing which
// proposers' batches commit.
func WithBatch(b int) Option { return func(o *Options) { o.Batch = b } }

// BatchRound summarizes one committed ACS round of a batched log run.
type BatchRound struct {
	// Round is the round index (the log slot the round filled).
	Round int
	// Subset is how many of the n proposals committed (≥ n−t whenever
	// the run converged inside the fault model).
	Subset int
	// Requests is the number of commands the round committed.
	Requests int
}

// BatchResult reports a batched replicated-log run.
type BatchResult struct {
	// Entries is the total order every correct replica committed: the
	// winning batches of every round flattened one entry per command in
	// (round, proposer ID, batch position) order.
	Entries []LogEntry
	// Rounds gives the per-round committed subset and request count.
	Rounds []BatchRound
	// Agreement confirms every round reached agreement with every
	// correct replica decided.
	Agreement bool
	// Committed counts committed commands across all rounds.
	Committed int
	// SubsetMin is the smallest committed subset over all rounds.
	SubsetMin int
	// StateHash digests the kv state machine after replaying the log —
	// equal across runs iff the committed logs are equivalent.
	StateHash string
	// Words / Messages are the run's total communication cost (sends by
	// correct processes).
	Words    int64
	Messages int64
	// WordsPerCommit is the amortized cost per committed command.
	WordsPerCommit float64
}

// ReplicateBatchContext runs a batched replicated log: `rounds`
// consecutive ACS rounds in which every replica proposes the next
// WithBatch(b) commands of its own queue (queues[i] feeds replica i), the
// round's n concurrent broadcasts and n binary votes decide which
// proposals land, and the winning batches flatten into one total order.
// Compared to ReplicateLogContext the commit throughput per slot is
// n×batch instead of 1, at the same per-round word budget — the paper's
// adaptive costs, amortized over every proposer's batch.
//
// WithInflight(w) pipelines the rounds through the engine's admission
// window; committed entries and the state hash are identical at every
// window size. Only crash fault patterns are supported (FaultCrash,
// FaultCrashLeader). The context cancels the run promptly (at tick
// granularity) with ErrCanceled.
func ReplicateBatchContext(ctx context.Context, n int, queues [][][]byte, rounds int, opts ...Option) (*BatchResult, error) {
	merged := buildOptions(n, opts)
	spec, err := baseSpec(merged)
	if err != nil {
		return nil, err
	}
	var leader bool
	switch merged.Pattern {
	case "", FaultCrash:
	case FaultCrashLeader:
		leader = true
	default:
		return nil, fmt.Errorf("%w: pattern %q is not supported by batched runs (crash patterns only)",
			ErrOptions, merged.Pattern)
	}
	batch := merged.Batch
	if batch == 0 {
		batch = 1
	}
	if batch < 0 {
		return nil, fmt.Errorf("%w: batch size %d", ErrOptions, batch)
	}
	if len(queues) != n {
		return nil, fmt.Errorf("%w: need %d queues, got %d", ErrInputs, n, len(queues))
	}
	if rounds < 1 {
		return nil, fmt.Errorf("%w: need at least one round", ErrInputs)
	}

	qs := make([][]types.Value, n)
	for i, q := range queues {
		qs[i] = make([]types.Value, 0, len(q))
		for _, c := range q {
			qs[i] = append(qs[i], types.Value(c).Clone())
		}
	}

	rep, err := engine.RunACSLog(engine.Config{
		N: n, T: merged.Threshold, F: spec.F, LeaderFault: leader,
		Inflight: merged.Inflight, Seed: merged.Seed,
		Ed25519: merged.RealSignatures, Trace: merged.Trace,
		Halt: haltFrom(ctx), Scheduler: merged.Sched,
	}, qs, rounds, batch)
	if err != nil {
		return nil, mapCanceled(ctx, err)
	}

	out := &BatchResult{
		Agreement: rep.Converged,
		Committed: rep.Committed,
		SubsetMin: rep.SubsetMin,
		StateHash: rep.StateHash,
		Words:     rep.Engine.Metrics.Honest.Words,
		Messages:  rep.Engine.Metrics.Honest.Messages,
	}
	for _, r := range rep.Rounds {
		out.Rounds = append(out.Rounds, BatchRound{Round: r.Round, Subset: r.Subset, Requests: r.Requests})
	}
	for _, e := range rep.Entries {
		out.Entries = append(out.Entries, LogEntry{
			Slot:     e.Slot,
			Proposer: int(e.Proposer),
			Command:  append([]byte(nil), e.Command...),
		})
	}
	if out.Committed > 0 {
		out.WordsPerCommit = float64(out.Words) / float64(out.Committed)
	}
	return out, nil
}
