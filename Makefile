# adaptiveba — reproduction of "Make Every Word Count" (PODC 2022).

GO ?= go

.PHONY: all build test test-short test-race vet bench experiments examples fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short mode skips the heavyweight safety sweeps.
test-short:
	$(GO) test -short ./...

# Race detector over the concurrent paths (parallel harness, transport).
test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure of the paper (EXPERIMENTS.md data).
experiments:
	$(GO) run ./cmd/adaptiveba-bench -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/adaptive-sweep
	$(GO) run ./examples/byzantine-faults
	$(GO) run ./examples/replicated-log
	$(GO) run ./examples/tcp-cluster

fuzz:
	$(GO) test ./internal/wire -fuzz FuzzDecodePayload -fuzztime 30s
	$(GO) test ./internal/wire -fuzz FuzzCertRoundTrip -fuzztime 30s
	$(GO) test ./internal/wire -fuzz FuzzFullRegistryRoundTrip -fuzztime 30s
	$(GO) test ./internal/core/bb -fuzz FuzzDecodeValue -fuzztime 30s

cover:
	$(GO) test ./... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
