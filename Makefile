# adaptiveba — reproduction of "Make Every Word Count" (PODC 2022).

GO ?= go

.PHONY: all build test test-short test-race vet bench bench-json bench-sim-json bench-net-json bench-engine-json bench-acs-json bench-admit-json bench-explore-json bench-scale-json bench-svc-json bench-all profile explore chaos-smoke svc-smoke experiments examples fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short mode skips the heavyweight safety sweeps.
test-short:
	$(GO) test -short ./...

# Race detector over the concurrent paths (parallel harness, transport).
test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the verification fast-path A/B baseline (BENCH_crypto.json):
# an Ed25519 aggregate-certificate sweep run with the cache on and off,
# asserting byte-identical CSVs and recording the wall-clock speedup.
bench-json:
	$(GO) run ./cmd/adaptiveba-bench -bench-json BENCH_crypto.json \
		-protocol bb -ns 21,41 -fs 0,1,2,4 -ed25519 -certmode aggregate

# Regenerate the tick-engine A/B baseline (BENCH_sim.json): the largest
# EXPERIMENTS sweep run serially (tick-workers=1) and in parallel
# (tick-workers=GOMAXPROCS), asserting byte-identical CSVs and recording
# the wall-clock speedup. Speedup reflects the host's core count —
# regenerate on a multi-core machine for a representative number.
bench-sim-json:
	$(GO) run ./cmd/adaptiveba-bench -bench-sim-json BENCH_sim.json \
		-protocol bb -ns 11,21,41,81,161 -fs 0 -ed25519

# Regenerate the transport data-plane A/B baseline (BENCH_net.json):
# the batched send path (encode-once + per-peer coalescing outboxes)
# vs -legacy-send over loopback TCP at n in {9,17,33}, asserting
# byte-identical cluster CSVs/decisions and ~0 allocs/message steady
# state on the pooled path.
bench-net-json:
	$(GO) run ./cmd/adaptiveba-bench -bench-net-json BENCH_net.json

# Regenerate the multi-session engine A/B baseline (BENCH_engine.json):
# a 64-slot replicated log over BB at n in {9,17,33}, run serially
# (inflight=1) and pipelined (inflight 4/16/64), asserting per-session
# decisions and word counts byte-identical across windows and recording
# the commit-throughput multiple in simulated (δ-bound) time.
bench-engine-json:
	$(GO) run ./cmd/adaptiveba-bench -bench-engine-json BENCH_engine.json

# Regenerate the batched-ACS A/B baseline (BENCH_acs.json): the n-proposer
# batched log (one BKR ACS round per slot) vs the single-proposer pipelined
# log over n in {9,17,33} x batch in {1,16,64} x f in {0,t}, asserting
# byte-identical decisions across tick-worker counts and admission windows
# and >= n/2x committed requests per slot at f=0.
bench-acs-json:
	$(GO) run ./cmd/adaptiveba-bench -bench-acs-json BENCH_acs.json

# Regenerate the session-scheduling A/B baseline (BENCH_admit.json):
# the decision-driven eager schedule vs the static stride over the
# 64-slot BB log at n in {9,17,33} x f in {0,t} x inflight in {4,16},
# asserting byte-identical decisions/words/state per cell and recording
# the commit-throughput multiple in simulated (δ-bound) time.
bench-admit-json:
	$(GO) run ./cmd/adaptiveba-bench -bench-admit-json BENCH_admit.json

# Regenerate the adversarial schedule-search baseline
# (BENCH_explore.json): genetic search for the worst adversary schedule
# at every (n, f) grid point, checked against the O(n(f+1)) word
# envelope. Fails if any schedule beats the envelope or breaks a safety
# invariant. Fully seeded: re-running reproduces the committed bytes.
bench-explore-json:
	$(GO) run ./cmd/adaptiveba-bench -bench-explore-json BENCH_explore.json

# Regenerate the large-n scale baseline (BENCH_scale.json): adaptive BB
# vs King–Saia committee sampling vs floodset over n in {64,256,1024,4096}
# x f in {0,1,ceil(sqrt n),t} under crash faults, recording words/process,
# allocs/tick, and wall clock per decision. Adaptive BB's fallback regime
# (f >= (n-t-1)/2 at n >= 1024) is Theta(n^3) words and is reported as a
# skipped cell carrying the analytic envelope instead of being executed.
# Takes several minutes (the n=4096 cells dominate).
bench-scale-json:
	$(GO) run ./cmd/adaptiveba-bench -bench-scale-json BENCH_scale.json

# Regenerate the replicated-KV-service baseline (BENCH_svc.json):
# requests/sec and words/request over a live server+client loopback
# session at payload sizes 16B..32KiB, anchored (triangle architecture:
# only the 32-byte digest enters agreement) vs inline (the payload rides
# the committed command). Anchored wire-words/request must stay within a
# constant factor of the small-value baseline; inline grows linearly.
bench-svc-json:
	$(GO) run ./cmd/adaptiveba-bench -bench-svc-json BENCH_svc.json

# Run every bench-*-json mode, then sweep the regenerated reports'
# determinism flags in one pass: any decisions_identical=false or
# csv_identical=false fails the target.
bench-all: bench-json bench-sim-json bench-net-json bench-engine-json bench-acs-json bench-admit-json bench-explore-json bench-scale-json bench-svc-json
	@echo "— determinism flags across BENCH_*.json —"
	@grep -c '"decisions_identical": true\|"csv_identical": true' BENCH_*.json || true
	@if grep -l '"decisions_identical": false\|"csv_identical": false' BENCH_*.json; then \
		echo "FAIL: a bench report recorded a determinism violation"; exit 1; \
	fi
	@echo "bench-all: every determinism flag is true"

# CPU/heap-profile the heaviest deterministic bench (the scheduling A/B)
# and print the hottest functions — flame-graph evidence for perf PRs.
# Profiles land in cpu.pprof / mem.pprof for `go tool pprof -http`.
profile:
	$(GO) run ./cmd/adaptiveba-bench -bench-admit-json /tmp/BENCH_admit.profile.json \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	$(GO) tool pprof -top -nodecount 15 cpu.pprof

# Interactive single-grid-point search with a full report.
explore:
	$(GO) run ./cmd/adaptiveba-sim -explore -protocol wba -n 9 -f 4 -generations 4 -population 8

# A TCP cluster under seeded fault injection (drops + jitter + a
# flapping peer); nodes must still decide the common value.
chaos-smoke:
	$(GO) run ./cmd/adaptiveba-cluster -protocol wba -n 5 -tick 40ms \
		-chaos-seed 42 -chaos-drop 0.05 -chaos-delay 0.2 -chaos-flap-every 7

# The replicated KV service under the race detector: server + two
# concurrent client sessions over loopback, mixed inline/anchored
# payloads, a snapshot mid-run, and a tamper-evidence walk at exit.
svc-smoke:
	$(GO) run -race ./cmd/adaptiveba-server -smoke
	$(GO) test -race ./internal/service -count=1

# Regenerate every table/figure of the paper (EXPERIMENTS.md data).
experiments:
	$(GO) run ./cmd/adaptiveba-bench -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/adaptive-sweep
	$(GO) run ./examples/byzantine-faults
	$(GO) run ./examples/replicated-log
	$(GO) run ./examples/tcp-cluster

fuzz:
	$(GO) test ./internal/wire -fuzz FuzzDecodePayload -fuzztime 30s
	$(GO) test ./internal/wire -fuzz FuzzCertRoundTrip -fuzztime 30s
	$(GO) test ./internal/wire -fuzz FuzzFullRegistryRoundTrip -fuzztime 30s
	$(GO) test ./internal/core/bb -fuzz FuzzDecodeValue -fuzztime 30s
	$(GO) test ./internal/acs -fuzz FuzzDecodeBatch -fuzztime 30s
	$(GO) test ./internal/acs -fuzz FuzzDecodeResult -fuzztime 30s
	$(GO) test ./internal/crypto/verifycache -fuzz FuzzCachedVerifyMatchesDirect -fuzztime 30s
	$(GO) test ./internal/transport -fuzz FuzzReadFrame$$ -fuzztime 30s
	$(GO) test ./internal/transport -fuzz FuzzReadFrameRoundTrip -fuzztime 30s
	$(GO) test ./internal/explore -fuzz FuzzScheduleGenome -fuzztime 30s
	$(GO) test ./internal/service -fuzz FuzzDecodeRequest -fuzztime 30s
	$(GO) test ./internal/service -fuzz FuzzDecodeResponse -fuzztime 30s
	$(GO) test ./internal/service -fuzz FuzzDecodeAuditLog -fuzztime 30s

cover:
	$(GO) test ./... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt cpu.pprof mem.pprof
