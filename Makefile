# adaptiveba — reproduction of "Make Every Word Count" (PODC 2022).

GO ?= go

.PHONY: all build test vet bench experiments examples fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short mode skips the heavyweight safety sweeps.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure of the paper (EXPERIMENTS.md data).
experiments:
	$(GO) run ./cmd/adaptiveba-bench -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/adaptive-sweep
	$(GO) run ./examples/byzantine-faults
	$(GO) run ./examples/replicated-log
	$(GO) run ./examples/tcp-cluster

fuzz:
	$(GO) test ./internal/wire -fuzz FuzzDecodePayload -fuzztime 30s
	$(GO) test ./internal/core/bb -fuzz FuzzDecodeValue -fuzztime 30s

cover:
	$(GO) test ./... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
