package adaptiveba

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func queuesFor(n, perReplica int) [][][]byte {
	queues := make([][][]byte, n)
	for i := range queues {
		for c := 0; c < perReplica; c++ {
			queues[i] = append(queues[i], []byte(fmt.Sprintf("cmd-%d-%d", i, c)))
		}
	}
	return queues
}

func TestReplicateLogFailureFree(t *testing.T) {
	res, err := ReplicateLog(Options{N: 5}, queuesFor(5, 2), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("replicas diverged")
	}
	if len(res.Entries) != 7 {
		t.Fatalf("got %d entries", len(res.Entries))
	}
	for s, e := range res.Entries {
		if e.Slot != s || e.Proposer != s%5 {
			t.Errorf("entry %d: %+v", s, e)
		}
		if e.Command == nil {
			t.Errorf("slot %d skipped in failure-free run", s)
		}
	}
	if !bytes.Equal(res.Entries[5].Command, []byte("cmd-0-1")) {
		t.Errorf("slot 5 (p0's second turn) committed %q", res.Entries[5].Command)
	}
	if res.WordsPerCommit <= 0 || res.WordsPerCommit > float64(14*5) {
		t.Errorf("words per commit = %.1f, want linear in n", res.WordsPerCommit)
	}
}

func TestReplicateLogWithCrashedProposer(t *testing.T) {
	res, err := ReplicateLog(Options{N: 5, Faults: 1}, queuesFor(5, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("replicas diverged")
	}
	// p1 crashed: its slot (slot 1) is skipped; the rest commit.
	for _, e := range res.Entries {
		if e.Proposer == 1 && e.Command != nil {
			t.Errorf("slot %d committed from crashed p1", e.Slot)
		}
		if e.Proposer != 1 && e.Command == nil {
			t.Errorf("slot %d skipped with live proposer", e.Slot)
		}
	}
}

func TestReplicateLogValidation(t *testing.T) {
	if _, err := ReplicateLog(Options{N: 5}, queuesFor(4, 1), 3); !errors.Is(err, ErrInputs) {
		t.Errorf("queue count: %v", err)
	}
	if _, err := ReplicateLog(Options{N: 5}, queuesFor(5, 1), 0); !errors.Is(err, ErrInputs) {
		t.Errorf("zero slots: %v", err)
	}
	if _, err := ReplicateLog(Options{N: 2}, queuesFor(2, 1), 1); !errors.Is(err, ErrOptions) {
		t.Errorf("bad n: %v", err)
	}
}
