package adaptiveba

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// apiGrid is the full fault-pattern grid the parity tests sweep.
var apiGrid = []struct {
	pattern FaultPattern
	faults  []int
}{
	{FaultCrash, []int{0, 1, 2}},
	{FaultCrashLeader, []int{1, 2}},
	{FaultReplay, []int{1, 2}},
}

// TestAPIParityBroadcast proves the option-based context entry point
// and the legacy struct form produce byte-identical Results over the
// full fault-pattern grid.
func TestAPIParityBroadcast(t *testing.T) {
	const n = 5
	for _, g := range apiGrid {
		for _, f := range g.faults {
			legacy, lerr := Broadcast(Options{N: n, Faults: f, Pattern: g.pattern, Seed: 42}, []byte("cmd"))
			modern, merr := BroadcastContext(context.Background(), n, []byte("cmd"),
				WithFaults(f), WithPattern(g.pattern), WithSeed(42))
			if lerr != nil || merr != nil {
				t.Fatalf("%s f=%d: legacy err %v, modern err %v", g.pattern, f, lerr, merr)
			}
			if !reflect.DeepEqual(legacy, modern) {
				t.Errorf("%s f=%d: results differ\nlegacy: %+v\nmodern: %+v", g.pattern, f, legacy, modern)
			}
		}
	}
}

func TestAPIParityWeakAgree(t *testing.T) {
	const n = 5
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = []byte(fmt.Sprintf("v%d", i))
	}
	pred := func(b []byte) bool { return len(b) > 0 }
	for _, g := range apiGrid {
		for _, f := range g.faults {
			legacy, lerr := WeakAgree(Options{N: n, Faults: f, Pattern: g.pattern, Seed: 42}, inputs, pred)
			modern, merr := WeakAgreeContext(context.Background(), n, inputs, pred,
				WithFaults(f), WithPattern(g.pattern), WithSeed(42))
			if lerr != nil || merr != nil {
				t.Fatalf("%s f=%d: legacy err %v, modern err %v", g.pattern, f, lerr, merr)
			}
			if !reflect.DeepEqual(legacy, modern) {
				t.Errorf("%s f=%d: results differ\nlegacy: %+v\nmodern: %+v", g.pattern, f, legacy, modern)
			}
		}
	}
}

func TestAPIParityStrongAgreeBinary(t *testing.T) {
	const n = 5
	inputs := []bool{true, false, true, false, true}
	for _, g := range apiGrid {
		for _, f := range g.faults {
			legacy, lerr := StrongAgreeBinary(Options{N: n, Faults: f, Pattern: g.pattern, Seed: 42}, inputs)
			modern, merr := StrongAgreeBinaryContext(context.Background(), n, inputs,
				WithFaults(f), WithPattern(g.pattern), WithSeed(42))
			if lerr != nil || merr != nil {
				t.Fatalf("%s f=%d: legacy err %v, modern err %v", g.pattern, f, lerr, merr)
			}
			if !reflect.DeepEqual(legacy, modern) {
				t.Errorf("%s f=%d: results differ\nlegacy: %+v\nmodern: %+v", g.pattern, f, legacy, modern)
			}
		}
	}
}

// TestAPIParityStrongAgree covers the naming fix all at once: the
// canonical StrongAgree, the deprecated AgreeStrong alias, and the
// context form all agree byte for byte.
func TestAPIParityStrongAgree(t *testing.T) {
	const n = 5
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = []byte("same")
	}
	for _, g := range apiGrid {
		for _, f := range g.faults {
			opts := Options{N: n, Faults: f, Pattern: g.pattern, Seed: 42}
			canonical, cerr := StrongAgree(opts, inputs)
			alias, aerr := AgreeStrong(opts, inputs)
			modern, merr := StrongAgreeContext(context.Background(), n, inputs,
				WithFaults(f), WithPattern(g.pattern), WithSeed(42))
			if cerr != nil || aerr != nil || merr != nil {
				t.Fatalf("%s f=%d: errs %v / %v / %v", g.pattern, f, cerr, aerr, merr)
			}
			if !reflect.DeepEqual(canonical, alias) {
				t.Errorf("%s f=%d: AgreeStrong alias diverges from StrongAgree", g.pattern, f)
			}
			if !reflect.DeepEqual(canonical, modern) {
				t.Errorf("%s f=%d: results differ\nlegacy: %+v\nmodern: %+v", g.pattern, f, canonical, modern)
			}
		}
	}
}

func TestAPIParityReplicateLog(t *testing.T) {
	const n, slots = 5, 5
	queues := make([][][]byte, n)
	for i := range queues {
		queues[i] = [][]byte{[]byte(fmt.Sprintf("SET k%d p%d", i, i))}
	}
	legacy, lerr := ReplicateLog(Options{N: n, Faults: 1, Seed: 42}, queues, slots)
	modern, merr := ReplicateLogContext(context.Background(), n, queues, slots,
		WithFaults(1), WithSeed(42))
	if lerr != nil || merr != nil {
		t.Fatalf("legacy err %v, modern err %v", lerr, merr)
	}
	if !reflect.DeepEqual(legacy, modern) {
		t.Errorf("results differ\nlegacy: %+v\nmodern: %+v", legacy, modern)
	}
}

// TestSentinelErrors pins the typed error identities — and that each
// still matches the legacy broad class existing callers test for.
func TestSentinelErrors(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		err  func() error
		want []error
	}{
		{"bad n", func() error {
			_, err := BroadcastContext(ctx, 2, []byte("v"))
			return err
		}, []error{ErrBadN, ErrOptions}},
		{"too many faults", func() error {
			_, err := BroadcastContext(ctx, 5, []byte("v"), WithFaults(3))
			return err
		}, []error{ErrTooManyFaults, ErrOptions}},
		{"no quorum", func() error {
			_, err := BroadcastContext(ctx, 5, []byte("v"), WithThreshold(3))
			return err
		}, []error{ErrNoQuorum, ErrOptions}},
		{"legacy bad n", func() error {
			_, err := Broadcast(Options{N: 2}, []byte("v"))
			return err
		}, []error{ErrBadN, ErrOptions}},
		{"legacy too many faults", func() error {
			_, err := WeakAgree(Options{N: 5, Faults: 9}, nil, nil)
			return err
		}, []error{ErrTooManyFaults, ErrOptions}},
		{"run many bad pattern", func() error {
			_, err := RunMany(ctx, BroadcastRequest(5, 0, []byte("v"), WithPattern(FaultReplay)))
			return err
		}, []error{ErrOptions}},
		{"run many mixed n", func() error {
			_, err := RunMany(ctx, BroadcastRequest(5, 0, []byte("v")), BroadcastRequest(7, 0, []byte("v")))
			return err
		}, []error{ErrBadN, ErrOptions}},
		{"run many empty", func() error {
			_, err := RunMany(ctx)
			return err
		}, []error{ErrInputs}},
	}
	for _, c := range cases {
		err := c.err()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		for _, want := range c.want {
			if !errors.Is(err, want) {
				t.Errorf("%s: errors.Is(%v, %v) = false", c.name, err, want)
			}
		}
	}
}

// TestContextCancellation covers both halt paths: a context canceled
// before the run starts, and one canceled mid-run (triggered from the
// trace stream). Both must return ErrCanceled promptly — which also
// matches context.Canceled — and leak no goroutines (the run is fully
// synchronous, checked by goroutine counting).
func TestContextCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BroadcastContext(pre, 9, []byte("v")); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled: err = %v, want ErrCanceled", err)
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled: err %v does not match context.Canceled", err)
	}

	// Mid-run: the trace writer observes traffic while the simulator is
	// inside the run, so canceling from it exercises the per-tick poll.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tracer := &cancelAfter{cancel: cancel, after: 3}
	if _, err := BroadcastContext(ctx, 9, []byte("v"), WithTrace(tracer)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-run: err = %v, want ErrCanceled", err)
	}
	if tracer.writes > tracer.after+64 {
		t.Errorf("cancellation was not prompt: %d trace writes after trigger", tracer.writes-tracer.after)
	}

	// RunMany through the engine honors cancellation too.
	if _, err := RunMany(pre, BroadcastRequest(5, 0, []byte("v"))); !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunMany pre-canceled: err = %v, want ErrCanceled", err)
	}

	// goleak-style check: no goroutine outlives a canceled run.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after canceled runs", before, after)
	}
}

// cancelAfter cancels a context after `after` writes, then keeps
// counting so the test can bound how much work ran post-cancel.
type cancelAfter struct {
	cancel context.CancelFunc
	after  int
	writes int
}

func (c *cancelAfter) Write(p []byte) (int, error) {
	c.writes++
	if c.writes == c.after {
		c.cancel()
	}
	return len(p), nil
}

// TestRunManyMatchesSolo proves the fan-out changes nothing observable:
// every RunMany result carries the same decision and word count as a
// solo run of the same instance, at any in-flight window.
func TestRunManyMatchesSolo(t *testing.T) {
	const n = 5
	wbaInputs := make([][]byte, n)
	for i := range wbaInputs {
		wbaInputs[i] = []byte("w")
	}
	bits := []bool{true, true, true, true, true}

	soloBB, err := Broadcast(Options{N: n, Faults: 1}, []byte("cmd"))
	if err != nil {
		t.Fatal(err)
	}
	soloWBA, err := WeakAgree(Options{N: n, Faults: 1}, wbaInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	soloSBA, err := StrongAgreeBinary(Options{N: n, Faults: 1}, bits)
	if err != nil {
		t.Fatal(err)
	}
	solo := []*Result{soloBB, soloWBA, soloSBA}

	var serial []*Result
	for _, w := range []int{1, 3} {
		results, err := RunMany(context.Background(),
			BroadcastRequest(n, 0, []byte("cmd"), WithFaults(1), WithInflight(w)),
			WeakAgreeRequest(n, wbaInputs, nil),
			StrongAgreeBinaryRequest(n, bits),
		)
		if err != nil {
			t.Fatalf("W=%d: %v", w, err)
		}
		if len(results) != 3 {
			t.Fatalf("W=%d: %d results", w, len(results))
		}
		for i, r := range results {
			if !r.AllDecided || !r.Agreement {
				t.Errorf("W=%d request %d: decided=%t agree=%t", w, i, r.AllDecided, r.Agreement)
			}
			if !bytes.Equal(r.Decision, solo[i].Decision) {
				t.Errorf("W=%d request %d: decision %q, solo %q", w, i, r.Decision, solo[i].Decision)
			}
			if r.Words != solo[i].Words {
				t.Errorf("W=%d request %d: words %d, solo %d", w, i, r.Words, solo[i].Words)
			}
			if r.FallbackProcesses != solo[i].FallbackProcesses {
				t.Errorf("W=%d request %d: fallback %d, solo %d", w, i, r.FallbackProcesses, solo[i].FallbackProcesses)
			}
		}
		if w == 1 {
			serial = results
			continue
		}
		for i := range results {
			if !reflect.DeepEqual(results[i], serial[i]) {
				t.Errorf("W=%d request %d diverges from serial: %+v vs %+v", w, i, results[i], serial[i])
			}
		}
	}
}

// TestReplicateLogInflight pins the pipelined log against the serial
// one: WithInflight changes throughput, never a committed entry.
func TestReplicateLogInflight(t *testing.T) {
	const n, slots = 5, 6
	queues := make([][][]byte, n)
	for i := range queues {
		queues[i] = [][]byte{[]byte(fmt.Sprintf("SET k%d p%d", i, i)), []byte(fmt.Sprintf("DEL k%d", i))}
	}
	serial, err := ReplicateLogContext(context.Background(), n, queues, slots, WithFaults(1))
	if err != nil {
		t.Fatal(err)
	}
	piped, err := ReplicateLogContext(context.Background(), n, queues, slots, WithFaults(1), WithInflight(4))
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Agreement || !piped.Agreement {
		t.Fatalf("agreement: serial=%t piped=%t", serial.Agreement, piped.Agreement)
	}
	if !reflect.DeepEqual(serial.Entries, piped.Entries) {
		t.Errorf("pipelining changed the log:\nserial: %+v\npiped: %+v", serial.Entries, piped.Entries)
	}
	if serial.Words != piped.Words {
		t.Errorf("pipelining changed the cost: serial %d words, piped %d", serial.Words, piped.Words)
	}
}

// TestRunManyEagerMatchesStatic pins the public scheduling option:
// WithEager changes the schedule only — every per-request result is
// identical to the default static run.
func TestRunManyEagerMatchesStatic(t *testing.T) {
	const n = 5
	wbaInputs := make([][]byte, n)
	for i := range wbaInputs {
		wbaInputs[i] = []byte("w")
	}
	bits := []bool{true, true, true, true, true}
	reqs := func(opts ...Option) []Request {
		return []Request{
			BroadcastRequest(n, 0, []byte("cmd"), append([]Option{WithFaults(1), WithInflight(2)}, opts...)...),
			WeakAgreeRequest(n, wbaInputs, nil),
			StrongAgreeBinaryRequest(n, bits),
		}
	}
	static, err := RunMany(context.Background(), reqs()...)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := RunMany(context.Background(), reqs(WithEager())...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range static {
		if !reflect.DeepEqual(static[i], eager[i]) {
			t.Errorf("request %d diverges under WithEager: %+v vs %+v", i, eager[i], static[i])
		}
	}
}
