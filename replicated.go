package adaptiveba

import (
	"crypto/rand"
	"fmt"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/harness"
	"adaptiveba/internal/metrics"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/smr"
	"adaptiveba/internal/types"
)

// LogEntry is one slot of a replicated log.
type LogEntry struct {
	// Slot is the position in the total order.
	Slot int
	// Proposer is the replica whose turn the slot was.
	Proposer int
	// Command is the committed command; nil marks a skipped slot (the
	// proposer was faulty or had nothing to propose).
	Command []byte
}

// LogResult reports a replicated-log run.
type LogResult struct {
	// Entries is the total order every correct replica committed.
	Entries []LogEntry
	// Agreement confirms all correct replicas built the identical log.
	Agreement bool
	// Words / Messages are the run's total communication cost.
	Words    int64
	Messages int64
	// WordsPerCommit is the cost per non-skipped slot.
	WordsPerCommit float64
}

// ReplicateLog runs a totally-ordered replicated log over the adaptive
// Byzantine Broadcast: `slots` consecutive slots with rotating proposers,
// where replica i proposes the commands of queues[i] in its own slots.
// It demonstrates the paper's payoff at the system level — a failure-free
// deployment commits each command for O(n) words instead of Θ(n²).
//
// Deprecated: Use ReplicateLogContext, which adds cancellation,
// functional options, and pipelined slots (WithInflight); this struct
// form is kept for existing callers and pinned byte-identical by
// TestAPIParityReplicateLog.
func ReplicateLog(opts Options, queues [][][]byte, slots int) (*LogResult, error) {
	return replicateLogRun(opts, nil, queues, slots)
}

func replicateLogRun(opts Options, halt func(types.Tick) bool, queues [][][]byte, slots int) (*LogResult, error) {
	spec, err := baseSpec(opts)
	if err != nil {
		return nil, err
	}
	if len(queues) != opts.N {
		return nil, fmt.Errorf("%w: need %d queues, got %d", ErrInputs, opts.N, len(queues))
	}
	if slots < 1 {
		return nil, fmt.Errorf("%w: need at least one slot", ErrInputs)
	}

	var params types.Params
	if spec.T > 0 {
		params, err = types.Custom(opts.N, spec.T)
	} else {
		params, err = types.NewParams(opts.N)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrOptions, err)
	}
	var scheme sig.Scheme
	if opts.RealSignatures {
		scheme, err = sig.NewEd25519Ring(opts.N, rand.Reader)
	} else {
		scheme, err = sig.NewHMACRing(opts.N, []byte(fmt.Sprintf("log-%d", opts.Seed)))
	}
	if err != nil {
		return nil, err
	}
	crypto := proto.NewCrypto(params, scheme, threshold.ModeCompact, []byte("log-dealer"))

	// WithInflight(w) pipelines the slots: consecutive broadcasts start
	// every ceil(SlotTicks/w) ticks instead of back to back, keeping up
	// to w instances live. Unset (0) preserves the strictly sequential
	// schedule byte for byte.
	var stride types.Tick
	if opts.Inflight > 0 {
		probe, err := smr.NewMachine(smr.Config{
			Params: params, Crypto: crypto, ID: 0, Tag: "log", Slots: slots,
		})
		if err != nil {
			return nil, fmt.Errorf("adaptiveba: %w", err)
		}
		w := types.Tick(opts.Inflight)
		if stride = (probe.SlotTicks() + w - 1) / w; stride < 1 {
			stride = 1
		}
	}

	var budget types.Tick
	rec := metrics.NewRecorder()
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			queue := make([]types.Value, 0, len(queues[id]))
			for _, c := range queues[id] {
				queue = append(queue, types.Value(c).Clone())
			}
			m, err := smr.NewMachine(smr.Config{
				Params: params, Crypto: crypto, ID: id,
				Tag: "log", Slots: slots, Queue: queue, Stride: stride,
			})
			if err != nil {
				panic("adaptiveba: smr config validated above: " + err.Error())
			}
			budget = m.MaxTicks()
			return m
		},
		Adversary: logAdversary(spec),
		MaxTicks:  budget * 2,
		Recorder:  rec,
		Halt:      halt,
	})
	if err != nil {
		return nil, err
	}

	logEnc, agreement := res.Agreement()
	out := &LogResult{
		Agreement: agreement,
		Words:     res.Report.Honest.Words,
		Messages:  res.Report.Honest.Messages,
	}
	if agreement && !logEnc.IsBottom() {
		entries, err := smr.DecodeLog(logEnc)
		if err != nil {
			return nil, fmt.Errorf("adaptiveba: decode committed log: %w", err)
		}
		committed := 0
		for _, e := range entries {
			le := LogEntry{Slot: e.Slot, Proposer: int(e.Proposer)}
			if !e.Command.IsBottom() {
				le.Command = append([]byte(nil), e.Command...)
				committed++
			}
			out.Entries = append(out.Entries, le)
		}
		if committed > 0 {
			out.WordsPerCommit = float64(out.Words) / float64(committed)
		}
	}
	return out, nil
}

// logAdversary converts the validated spec's fault settings into a crash
// adversary for the log runner (crash patterns only; the richer attacks
// stay in the harness).
func logAdversary(spec harness.Spec) sim.Adversary {
	if spec.F == 0 {
		return nil
	}
	start := 1
	if spec.Fault == harness.FaultCrashLeader {
		start = 0
	}
	ids := make([]types.ProcessID, 0, spec.F)
	for i := 0; len(ids) < spec.F; i++ {
		ids = append(ids, types.ProcessID((start+i)%spec.N))
	}
	return adversary.NewCrash(ids...)
}
