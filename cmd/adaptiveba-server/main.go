// Command adaptiveba-server runs the replicated KV service: client
// writes commit through batched ACS agreement rounds, large values are
// anchored through a content-addressed blob store (only their 32-byte
// digests enter agreement), and a hash-chained audit log makes the
// off-chain bytes tamper-evident end to end.
//
//	adaptiveba-server -addr 127.0.0.1:7450 -blob-dir /var/lib/adaptiveba
//	adaptiveba-server -smoke
//
// -smoke runs the self-contained exercise used by CI: a server plus two
// concurrent client sessions over loopback, mixed inline and anchored
// payload sizes, a snapshot mid-run, and a full tamper-evidence
// verification at exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"adaptiveba"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adaptiveba-server:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("adaptiveba-server", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:0", "TCP listen address")
		n           = fs.Int("n", 4, "replica count")
		f           = fs.Int("f", 0, "crashed replicas for the agreement rounds (0 ≤ f ≤ t)")
		batch       = fs.Int("batch", 8, "commands per proposer per agreement round")
		snapEvery   = fs.Int("snapshot-every", 1024, "snapshot + truncate each time this many entries accumulate (negative disables)")
		dedupWin    = fs.Int("dedup-window", 64, "responses retained per client session for duplicate replay")
		blobDir     = fs.String("blob-dir", "", "content-addressed blob store root (required unless -smoke)")
		auditPath   = fs.String("audit-path", "", "audit log file (default <blob-dir>/audit.log)")
		inlineMax   = fs.Int("inline-max", 256, "largest value committed inline; larger values are anchored")
		seed        = fs.Int64("seed", 1, "agreement round seed")
		measure     = fs.Bool("measure-bytes", false, "meter encoded payload bytes through the agreement rounds")
		smoke       = fs.Bool("smoke", false, "run the self-contained smoke exercise and exit")
		smokeWrites = fs.Int("smoke-writes", 8, "writes per client in -smoke")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []adaptiveba.ServeOption{
		adaptiveba.WithReplicas(*n),
		adaptiveba.WithCrashFaults(*f),
		adaptiveba.WithCommitBatch(*batch),
		adaptiveba.WithSnapshotEvery(*snapEvery),
		adaptiveba.WithDedupWindow(*dedupWin),
		adaptiveba.WithInlineMax(*inlineMax),
		adaptiveba.WithServeSeed(*seed),
	}
	if *measure {
		opts = append(opts, adaptiveba.WithMeasuredBytes())
	}
	if *auditPath != "" {
		opts = append(opts, adaptiveba.WithAuditPath(*auditPath))
	}

	if *smoke {
		return runSmoke(out, *addr, *blobDir, *smokeWrites, opts)
	}

	if *blobDir == "" {
		return errors.New("-blob-dir is required (or use -smoke)")
	}
	opts = append(opts, adaptiveba.WithBlobDir(*blobDir))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	svc, err := adaptiveba.ServeContext(ctx, *addr, opts...)
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Fprintf(out, "listening on %s (n=%d f=%d inline<=%dB)\n", svc.Addr(), *n, *f, *inlineMax)
	<-ctx.Done()
	st := svc.Stats()
	fmt.Fprintf(out, "shutdown: %d commands in %d rounds, %d words, %d snapshots\n",
		st.Committed, st.Rounds, st.Words, st.Snapshots)
	return nil
}

// runSmoke exercises the full service path in one process: a server,
// two concurrent client sessions, mixed inline and anchored payloads, a
// snapshot forced mid-run by a small threshold, and a tamper-evidence
// verification before exit.
func runSmoke(out io.Writer, addr, blobDir string, writes int, opts []adaptiveba.ServeOption) error {
	if writes < 1 {
		return errors.New("-smoke-writes must be at least 1")
	}
	if blobDir == "" {
		dir, err := os.MkdirTemp("", "adaptiveba-smoke-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		blobDir = dir
	}
	ctx := context.Background()
	// Snapshot threshold below the total write count forces at least one
	// snapshot+truncate while the clients are still writing.
	opts = append(opts, adaptiveba.WithBlobDir(blobDir), adaptiveba.WithSnapshotEvery(writes))
	svc, err := adaptiveba.ServeContext(ctx, addr, opts...)
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Fprintf(out, "smoke: server on %s\n", svc.Addr())

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = smokeClient(ctx, svc.Addr(), id, writes)
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", id, err)
		}
	}

	c, err := adaptiveba.DialContext(ctx, svc.Addr())
	if err != nil {
		return err
	}
	defer c.Close()
	rep, err := c.Verify(ctx)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	st := svc.Stats()
	if st.Snapshots == 0 {
		return errors.New("smoke never snapshotted")
	}
	fmt.Fprintf(out, "smoke: verified=%v audit-entries=%d blobs=%d\n", rep.OK(), rep.Entries, rep.Blobs)
	fmt.Fprintf(out, "smoke: %d commands in %d rounds, %d words, %d snapshots (%d entries truncated)\n",
		st.Committed, st.Rounds, st.Words, st.Snapshots, st.Truncated)
	return nil
}

// smokeClient is one session's workload: alternating small (inline) and
// large (anchored) puts, read-back checks, and one delete.
func smokeClient(ctx context.Context, addr string, id, writes int) error {
	c, err := adaptiveba.DialContext(ctx, addr)
	if err != nil {
		return err
	}
	defer c.Close()
	for i := 0; i < writes; i++ {
		key := []byte(fmt.Sprintf("c%d/k%d", id, i))
		value := []byte(fmt.Sprintf("small-%d-%d", id, i))
		if i%2 == 1 { // above the default inline threshold: anchored
			value = make([]byte, 2048)
			for j := range value {
				value[j] = byte(id + i + j)
			}
		}
		if err := c.Put(ctx, key, value); err != nil {
			return err
		}
		got, err := c.Get(ctx, key)
		if err != nil {
			return err
		}
		if len(got) != len(value) {
			return fmt.Errorf("read-back of %s: %d bytes, want %d", key, len(got), len(value))
		}
	}
	if err := c.Del(ctx, []byte(fmt.Sprintf("c%d/k0", id))); err != nil {
		return err
	}
	if _, err := c.Get(ctx, []byte(fmt.Sprintf("c%d/k0", id))); !errors.Is(err, adaptiveba.ErrKeyNotFound) {
		return fmt.Errorf("deleted key still readable: %v", err)
	}
	return nil
}
