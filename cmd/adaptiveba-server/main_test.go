package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmoke runs the full smoke exercise: server + two concurrent
// clients over loopback, mixed inline/anchored payloads, a snapshot
// mid-run, and a verification walk at exit.
func TestSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-smoke", "-smoke-writes", "4",
		"-blob-dir", filepath.Join(t.TempDir(), "blobs"),
	}, &out); err != nil {
		t.Fatalf("smoke failed: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "verified=true") {
		t.Fatalf("smoke did not verify clean:\n%s", got)
	}
	if !strings.Contains(got, "snapshots") {
		t.Fatalf("smoke summary missing snapshot count:\n%s", got)
	}
}

func TestSmokeWithFaults(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-smoke", "-smoke-writes", "3", "-n", "5", "-f", "2",
		"-blob-dir", filepath.Join(t.TempDir(), "blobs"),
	}, &out); err != nil {
		t.Fatalf("smoke with crash faults failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verified=true") {
		t.Fatalf("faulty smoke did not verify clean:\n%s", out.String())
	}
}

func TestServerRequiresBlobDir(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:0"}, &out); err == nil {
		t.Fatal("server started without -blob-dir")
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-smoke", "-smoke-writes", "0"}, &out); err == nil {
		t.Fatal("zero smoke writes accepted")
	}
}
