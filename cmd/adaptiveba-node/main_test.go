package main

import (
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

func testCrypto(t *testing.T) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(5)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(5, []byte("node-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

func TestBuildMachine(t *testing.T) {
	crypto, params := testCrypto(t)
	for _, p := range []string{"bb", "wba"} {
		if _, err := buildMachine(p, params, crypto, 1, 0, types.Value("v")); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
	if _, err := buildMachine("strongba", params, crypto, 1, 0, types.Value("1")); err != nil {
		t.Errorf("strongba: %v", err)
	}
	if _, err := buildMachine("strongba", params, crypto, 1, 0, types.Value("x")); err == nil {
		t.Error("non-binary strongba input accepted")
	}
	if _, err := buildMachine("nope", params, crypto, 1, 0, nil); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-n", "5", "-addrs", "a,b"}); err == nil {
		t.Error("wrong addr count accepted")
	}
	if err := run([]string{"-n", "2"}); err == nil {
		t.Error("tiny n accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
