// Command adaptiveba-node runs one process of a protocol over real TCP.
// All nodes of a cluster must share the same -n, -addrs, -protocol,
// -sender and -seed (the seed stands in for the trusted PKI setup: nodes
// derive the same key material from it, as a deployment would from a key
// ceremony).
//
// A 5-node strong BA on one machine:
//
//	for i in 0 1 2 3 4; do
//	  adaptiveba-node -id $i -n 5 -protocol strongba -input 1 \
//	    -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004 &
//	done; wait
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/core/strongba"
	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/metrics"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/transport"
	"adaptiveba/internal/types"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adaptiveba-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adaptiveba-node", flag.ContinueOnError)
	var (
		id         = fs.Int("id", 0, "this process's id (0..n-1)")
		n          = fs.Int("n", 5, "number of processes")
		addrsCSV   = fs.String("addrs", "", "comma-separated host:port list, one per process")
		protocol   = fs.String("protocol", "strongba", "protocol: bb | wba | strongba")
		input      = fs.String("input", "1", "input value (strongba: 0 or 1)")
		sender     = fs.Int("sender", 0, "designated sender (bb only)")
		seed       = fs.String("seed", "cluster-seed", "shared trusted-setup seed")
		tick       = fs.Duration("tick", 25*time.Millisecond, "tick interval (δ)")
		flushEvery = fs.Int("flush-every", 0, "per-peer outbox bound in bytes before backpressure drops (0 = default 4MiB)")
		legacySend = fs.Bool("legacy-send", false, "use the synchronous per-message send path instead of batched outboxes")
		verbose    = fs.Bool("v", false, "verbose transport logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	params, err := types.NewParams(*n)
	if err != nil {
		return err
	}
	addrs := strings.Split(*addrsCSV, ",")
	if *addrsCSV == "" || len(addrs) != *n {
		return fmt.Errorf("need -addrs with exactly %d entries", *n)
	}
	ring, err := sig.NewHMACRing(*n, []byte(*seed))
	if err != nil {
		return err
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte(*seed+"-dealer"))

	machine, err := buildMachine(*protocol, params, crypto, types.ProcessID(*id), types.ProcessID(*sender), types.Value(*input))
	if err != nil {
		return err
	}

	rec := metrics.NewRecorder()
	cfg := transport.Config{
		Params:       params,
		Crypto:       crypto,
		ID:           types.ProcessID(*id),
		Addrs:        addrs,
		Registry:     transport.NewFullRegistry(),
		TickInterval: *tick,
		Recorder:     rec,
		FlushBytes:   *flushEvery,
		LegacySend:   *legacySend,
	}
	if *verbose {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	node, err := transport.NewNode(cfg, machine)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	decision, err := node.Run(ctx)
	if err != nil {
		return err
	}
	rep := rec.Snapshot()
	fmt.Printf("node %d decided: %s  (sent %d msgs, %d words, %d bytes)\n",
		*id, decision, rep.Honest.Messages, rep.Honest.Words, rep.Honest.Bytes)
	return nil
}

func buildMachine(protocol string, params types.Params, crypto *proto.Crypto, id, sender types.ProcessID, input types.Value) (proto.Machine, error) {
	switch protocol {
	case "bb":
		return bb.NewMachine(bb.Config{
			Params: params, Crypto: crypto, ID: id,
			Sender: sender, Input: input, Tag: "node/bb",
		}), nil
	case "wba":
		return wba.NewMachine(wba.Config{
			Params: params, Crypto: crypto, ID: id,
			Input: input, Predicate: valid.NonBottom(), Tag: "node/wba",
		}), nil
	case "strongba":
		var bit types.Value
		switch string(input) {
		case "0":
			bit = types.Zero
		case "1":
			bit = types.One
		default:
			return nil, fmt.Errorf("strongba input must be 0 or 1, got %q", input)
		}
		return strongba.NewMachine(strongba.Config{
			Params: params, Crypto: crypto, ID: id, Input: bit, Tag: "node/sba",
		})
	default:
		return nil, fmt.Errorf("unknown protocol %q", protocol)
	}
}
