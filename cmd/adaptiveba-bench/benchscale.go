package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"adaptiveba/internal/harness"
	"adaptiveba/internal/types"
)

// scaleCell is one (protocol, n, f) measurement of the scale grid.
type scaleCell struct {
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	F        int    `json:"f"`

	// Skipped marks grid cells whose cost is structurally infeasible to
	// execute (the adaptive protocol's quadratic-regime fallback runs n
	// parallel Dolev–Strong instances — Θ(n³) words — which at n ≥ 1024
	// is tens of billions of messages). The skip IS the measurement: the
	// estimate shows the cliff the paper's adaptivity avoids when f is
	// small.
	Skipped        bool   `json:"skipped,omitempty"`
	SkipReason     string `json:"skip_reason,omitempty"`
	EstimatedWords int64  `json:"estimated_words,omitempty"`

	Words           int64   `json:"words"`
	Messages        int64   `json:"messages"`
	WordsPerProcess float64 `json:"words_per_process"`
	Ticks           int64   `json:"ticks"`
	DecisionTick    int64   `json:"decision_tick"`
	WallSeconds     float64 `json:"wall_seconds"`
	// AllocsPerTick is the whole-run heap-allocation count divided by
	// ticks — an upper bound on the steady-state rate (it includes
	// machine construction); the alloc-ceiling tests pin the steady
	// state itself.
	AllocsPerTick float64 `json:"allocs_per_tick"`
	Decided       bool    `json:"decided"`
	Agreement     bool    `json:"agreement"`
}

// scaleBench is the report written by -bench-scale-json.
type scaleBench struct {
	Fault      string   `json:"fault"`
	Scheme     string   `json:"scheme"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Host       hostMeta `json:"host"`
	Ns         []int    `json:"ns"`
	// FsPerN documents the f axis: {0, 1, ⌈√n⌉, t} per n.
	FsPerN    map[string][]int `json:"fs_per_n"`
	Protocols []string         `json:"protocols"`

	Cells []scaleCell `json:"cells"`

	// AdaptiveWinsFewFault asserts the headline: for every executed cell
	// with f ≤ √n, the adaptive protocol's words/process is below the
	// committee baseline's at the same (n, f).
	AdaptiveWinsFewFault bool `json:"adaptive_wins_few_fault"`
	// LargestDecidedN is the largest n at which every protocol's f=0
	// cell completed a decision.
	LargestDecidedN int `json:"largest_decided_n"`
}

// scaleProtocols orders the compared protocols.
var scaleProtocols = []string{
	string(harness.ProtocolBB),
	string(harness.ProtocolCommittee),
	string(harness.ProtocolFloodSet),
}

// isqrt returns ⌈√n⌉.
func isqrt(n int) int { return int(math.Ceil(math.Sqrt(float64(n)))) }

// scaleFs returns the f axis for one n: {0, 1, ⌈√n⌉, t}, deduplicated.
func scaleFs(n int) []int {
	t := (n - 1) / 2
	raw := []int{0, 1, isqrt(n), t}
	fs := raw[:0]
	for _, f := range raw {
		if len(fs) == 0 || f > fs[len(fs)-1] {
			fs = append(fs, f)
		}
	}
	return fs
}

// fallbackEnvelope is the explore package's piecewise word envelope: the
// adaptive path costs ≤ 12·n·(f+1) words, and once f reaches the
// fallback threshold the n parallel Dolev–Strong instances add ≤ 4·n³.
func fallbackEnvelope(n, f int) int64 {
	return 12*int64(n)*int64(f+1) + 4*int64(n)*int64(n)*int64(n)
}

// skipCell reports whether a grid cell is infeasible to execute, with
// the reason. Only the adaptive protocol's quadratic regime at n ≥ 1024
// qualifies: everything else on the grid runs.
func skipCell(protocol string, n, f int) (bool, string) {
	if protocol != string(harness.ProtocolBB) || n < 1024 {
		return false, ""
	}
	params, err := types.NewParams(n)
	if err != nil || f < params.FallbackThreshold() {
		return false, ""
	}
	return true, fmt.Sprintf(
		"adaptive fallback regime (f=%d ≥ threshold %d) runs n parallel Dolev–Strong instances: Θ(n³) ≈ %d words is infeasible to simulate at n=%d; estimated_words carries the envelope",
		f, params.FallbackThreshold(), fallbackEnvelope(n, f), n)
}

// runScaleCell executes one grid cell and measures words, wall clock,
// and allocation rate.
func runScaleCell(protocol string, n, f int) (scaleCell, error) {
	cell := scaleCell{Protocol: protocol, N: n, F: f}
	if skip, reason := skipCell(protocol, n, f); skip {
		cell.Skipped = true
		cell.SkipReason = reason
		cell.EstimatedWords = fallbackEnvelope(n, f)
		return cell, nil
	}
	spec := harness.Spec{
		Protocol: harness.Protocol(protocol),
		N:        n,
		F:        f,
		Fault:    harness.FaultCrash,
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	o, err := harness.Run(spec)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return cell, fmt.Errorf("%s n=%d f=%d: %w", protocol, n, f, err)
	}
	cell.Words = o.Words
	cell.Messages = o.Messages
	cell.WordsPerProcess = float64(o.Words) / float64(n)
	cell.Ticks = int64(o.Ticks)
	cell.DecisionTick = int64(o.DecisionTick)
	cell.WallSeconds = wall.Seconds()
	if o.Ticks > 0 {
		cell.AllocsPerTick = float64(after.Mallocs-before.Mallocs) / float64(o.Ticks)
	}
	cell.Decided = o.Decided
	cell.Agreement = o.Agreement
	return cell, nil
}

// runBenchScaleJSON sweeps the scale grid — n ∈ ns × f ∈ {0, 1, √n, t} ×
// {adaptive BB, committee sampling, floodset} — and writes BENCH_scale
// to path. Cells run sequentially (one at a time) so per-cell wall clock
// and allocation rates are not confounded by sibling runs.
func runBenchScaleJSON(out io.Writer, path string, ns []int) error {
	rep := scaleBench{
		Fault:      string(harness.FaultCrash),
		Scheme:     "hmac",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host:       newHostMeta(),
		Ns:         ns,
		FsPerN:     make(map[string][]int, len(ns)),
		Protocols:  scaleProtocols,
	}
	for _, n := range ns {
		rep.FsPerN[fmt.Sprint(n)] = scaleFs(n)
	}

	adaptivePerProc := make(map[[2]int]float64)
	committeePerProc := make(map[[2]int]float64)
	for _, n := range ns {
		for _, f := range scaleFs(n) {
			for _, protocol := range scaleProtocols {
				cell, err := runScaleCell(protocol, n, f)
				if err != nil {
					return err
				}
				rep.Cells = append(rep.Cells, cell)
				status := "ok"
				switch {
				case cell.Skipped:
					status = "skipped (fallback regime)"
				case !cell.Decided || !cell.Agreement:
					status = "NO DECISION"
				}
				fmt.Fprintf(out, "%-10s n=%-5d f=%-5d %12d words %8.1f w/proc %7.2fs  %s\n",
					protocol, n, f, cell.Words, cell.WordsPerProcess, cell.WallSeconds, status)
				if !cell.Skipped && cell.Decided {
					switch protocol {
					case string(harness.ProtocolBB):
						adaptivePerProc[[2]int{n, f}] = cell.WordsPerProcess
					case string(harness.ProtocolCommittee):
						committeePerProc[[2]int{n, f}] = cell.WordsPerProcess
					}
				}
			}
		}
	}

	rep.AdaptiveWinsFewFault = true
	for _, n := range ns {
		for _, f := range scaleFs(n) {
			if f > isqrt(n) {
				continue
			}
			a, okA := adaptivePerProc[[2]int{n, f}]
			c, okC := committeePerProc[[2]int{n, f}]
			if !okA || !okC || a >= c {
				rep.AdaptiveWinsFewFault = false
			}
		}
	}
	for _, n := range ns {
		allDecided := true
		for _, protocol := range scaleProtocols {
			found := false
			for i := range rep.Cells {
				c := &rep.Cells[i]
				if c.Protocol == protocol && c.N == n && c.F == 0 && c.Decided {
					found = true
					break
				}
			}
			if !found {
				allDecided = false
			}
		}
		if allDecided && n > rep.LargestDecidedN {
			rep.LargestDecidedN = n
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s (largest fully-decided n: %d, adaptive wins f ≤ √n: %v)\n",
		path, rep.LargestDecidedN, rep.AdaptiveWinsFewFault)
	return nil
}
