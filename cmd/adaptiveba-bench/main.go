// Command adaptiveba-bench regenerates the paper's tables and figures
// (DESIGN.md §3) on the deterministic simulator and prints them.
//
//	adaptiveba-bench -list
//	adaptiveba-bench -exp t1-bb
//	adaptiveba-bench -all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"adaptiveba/internal/harness"
	"adaptiveba/internal/plot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adaptiveba-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("adaptiveba-bench", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list experiments")
		exp        = fs.String("exp", "", "run one experiment by id")
		all        = fs.Bool("all", false, "run every experiment")
		sweep      = fs.Bool("sweep", false, "run an (n, f) sweep and print a table or CSV")
		protocol   = fs.String("protocol", "bb", "sweep protocol")
		nsFlag     = fs.String("ns", "11,21,41", "sweep n values (comma-separated)")
		fsFlag     = fs.String("fs", "0,1,2,4", "sweep f values (comma-separated)")
		fault      = fs.String("fault", "crash", "sweep fault pattern")
		asCSV      = fs.Bool("csv", false, "emit the sweep as CSV")
		asPlot     = fs.Bool("plot", false, "render the sweep as an ASCII chart (words vs f, one series per n)")
		workers    = fs.Int("parallel", 0, "worker count for grid points (0 = one per CPU, 1 = sequential)")
		ed25519    = fs.Bool("ed25519", false, "sweep with real Ed25519 signatures")
		certmode   = fs.String("certmode", "compact", "sweep threshold certificate encoding: compact | aggregate")
		nocache    = fs.Bool("no-verify-cache", false, "sweep with the verification fast path disabled")
		tickW      = fs.Int("tick-workers", 0, "per-tick worker count inside one run (0 = one per CPU, 1 = serial); any value yields identical output")
		benchOut   = fs.String("bench-json", "", "run the sweep cached AND uncached, write a machine-readable A/B report to this path")
		benchSim   = fs.String("bench-sim-json", "", "run the sweep serial AND parallel (tick workers 1 vs GOMAXPROCS), write a machine-readable A/B report to this path")
		benchNet   = fs.String("bench-net-json", "", "A/B the transport send paths (batched vs -legacy-send) over loopback TCP, write a machine-readable report to this path")
		benchEng   = fs.String("bench-engine-json", "", "A/B the multi-session engine's pipelined replicated log against serial slot-at-a-time execution, write a machine-readable report to this path")
		sessions   = fs.Int("sessions", 64, "engine A/B: total log slots per run")
		inflight   = fs.String("inflight", "1,4,16,64", "engine A/B: admission windows to measure (comma-separated; serial baseline first)")
		benchAdmit = fs.String("bench-admit-json", "", "A/B the eager (decision-driven) session schedule against the static stride over the (n, f, inflight) grid, write a machine-readable report to this path")
		benchACS   = fs.String("bench-acs-json", "", "A/B the batched ACS log against the single-proposer pipelined log over the (n, batch, f) grid, write a machine-readable report to this path")
		batchesFl  = fs.String("batches", "1,16,64", "acs A/B: per-proposer batch sizes to measure (comma-separated)")
		benchExp   = fs.String("bench-explore-json", "", "run the adversarial schedule search over the full (n, 0..t) grid, write worst-words-vs-envelope to this path")
		benchScale = fs.String("bench-scale-json", "", "sweep the large-n grid (adaptive BB vs committee sampling vs floodset over n ∈ -scale-ns × f ∈ {0,1,√n,t}), write a machine-readable report to this path")
		scaleNs    = fs.String("scale-ns", "64,256,1024,4096", "scale sweep: n values (comma-separated)")
		benchSvc   = fs.String("bench-svc-json", "", "measure the replicated KV service (req/s and words/request, anchored vs inline, over -svc-sizes), write a machine-readable report to this path")
		svcSizes   = fs.String("svc-sizes", "16,256,4096,32768", "service bench: payload sizes in bytes (comma-separated, ascending)")
		svcReqs    = fs.Int("svc-requests", 24, "service bench: requests per cell")
		expSeed    = fs.Int64("seed", 1, "explore sweep: search seed (whole report is a pure function of it)")
		expGens    = fs.Int("generations", 3, "explore sweep: generations per grid point")
		expPop     = fs.Int("population", 6, "explore sweep: population per generation")
		cpuProf    = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this path")
		memProf    = fs.String("memprofile", "", "write a pprof heap profile (after a final GC) to this path on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptiveba-bench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "adaptiveba-bench: -memprofile:", err)
			}
		}()
	}
	pool := harness.Pool{Workers: *workers}
	mode, err := parseCertMode(*certmode)
	if err != nil {
		return err
	}
	if *benchOut != "" {
		ns, err := parseInts(*nsFlag)
		if err != nil {
			return fmt.Errorf("-ns: %w", err)
		}
		fvals, err := parseInts(*fsFlag)
		if err != nil {
			return fmt.Errorf("-fs: %w", err)
		}
		return runBenchJSON(out, *benchOut, pool, harness.Spec{
			Protocol:    harness.Protocol(*protocol),
			Fault:       harness.Fault(*fault),
			Ed25519:     *ed25519,
			CertMode:    mode,
			CountOps:    true,
			TickWorkers: *tickW,
		}, ns, fvals)
	}
	if *benchEng != "" {
		// The engine A/B has its own default mesh sizes; -ns overrides.
		nsStr, explicit := "9,17,33", false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "ns" {
				explicit = true
			}
		})
		if explicit {
			nsStr = *nsFlag
		}
		ns, err := parseInts(nsStr)
		if err != nil {
			return fmt.Errorf("-ns: %w", err)
		}
		windows, err := parseInts(*inflight)
		if err != nil {
			return fmt.Errorf("-inflight: %w", err)
		}
		return runBenchEngineJSON(out, *benchEng, ns, *sessions, windows)
	}
	if *benchAdmit != "" {
		// The admission A/B has its own default mesh sizes and window list
		// (the ISSUE's X-ADMIT grid); -ns and -inflight override.
		nsStr, winStr := "9,17,33", "4,16"
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "ns":
				nsStr = *nsFlag
			case "inflight":
				winStr = *inflight
			}
		})
		ns, err := parseInts(nsStr)
		if err != nil {
			return fmt.Errorf("-ns: %w", err)
		}
		windows, err := parseInts(winStr)
		if err != nil {
			return fmt.Errorf("-inflight: %w", err)
		}
		return runBenchAdmitJSON(out, *benchAdmit, ns, *sessions, windows)
	}
	if *benchACS != "" {
		// The ACS A/B has its own default mesh sizes and round count; -ns
		// and -sessions override.
		nsStr, rounds := "9,17,33", 4
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "ns":
				nsStr = *nsFlag
			case "sessions":
				rounds = *sessions
			}
		})
		ns, err := parseInts(nsStr)
		if err != nil {
			return fmt.Errorf("-ns: %w", err)
		}
		batches, err := parseInts(*batchesFl)
		if err != nil {
			return fmt.Errorf("-batches: %w", err)
		}
		return runBenchACSJSON(out, *benchACS, ns, batches, rounds)
	}
	if *benchExp != "" {
		// The explore sweep has its own default protocol and mesh sizes;
		// -protocol and -ns override.
		proto, nsStr := "wba", "9,17,33"
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "ns":
				nsStr = *nsFlag
			case "protocol":
				proto = *protocol
			}
		})
		ns, err := parseInts(nsStr)
		if err != nil {
			return fmt.Errorf("-ns: %w", err)
		}
		return runBenchExploreJSON(out, *benchExp, proto, ns, *expSeed, *expGens, *expPop, *workers)
	}
	if *benchNet != "" {
		// The network A/B has its own default mesh sizes; -ns overrides.
		nsStr, explicit := "9,17,33", false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "ns" {
				explicit = true
			}
		})
		if explicit {
			nsStr = *nsFlag
		}
		ns, err := parseInts(nsStr)
		if err != nil {
			return fmt.Errorf("-ns: %w", err)
		}
		return runBenchNetJSON(out, *benchNet, ns)
	}
	if *benchSim != "" {
		ns, err := parseInts(*nsFlag)
		if err != nil {
			return fmt.Errorf("-ns: %w", err)
		}
		fvals, err := parseInts(*fsFlag)
		if err != nil {
			return fmt.Errorf("-fs: %w", err)
		}
		return runBenchSimJSON(out, *benchSim, harness.Spec{
			Protocol:      harness.Protocol(*protocol),
			Fault:         harness.Fault(*fault),
			Ed25519:       *ed25519,
			CertMode:      mode,
			NoVerifyCache: *nocache,
		}, ns, fvals)
	}
	if *benchScale != "" {
		ns, err := parseInts(*scaleNs)
		if err != nil {
			return fmt.Errorf("-scale-ns: %w", err)
		}
		return runBenchScaleJSON(out, *benchScale, ns)
	}
	if *benchSvc != "" {
		sizes, err := parseInts(*svcSizes)
		if err != nil {
			return fmt.Errorf("-svc-sizes: %w", err)
		}
		if *svcReqs < 1 {
			return fmt.Errorf("-svc-requests: need at least 1")
		}
		return runBenchSvcJSON(out, *benchSvc, sizes, *svcReqs)
	}
	switch {
	case *list:
		for _, e := range harness.Experiments() {
			fmt.Fprintf(out, "%-16s %s\n", e.ID, e.Title)
		}
		return nil
	case *exp != "":
		e, ok := harness.ExperimentByID(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		return runOne(out, e, pool)
	case *all:
		for _, e := range harness.Experiments() {
			if err := runOne(out, e, pool); err != nil {
				return err
			}
		}
		return nil
	case *sweep:
		ns, err := parseInts(*nsFlag)
		if err != nil {
			return fmt.Errorf("-ns: %w", err)
		}
		fvals, err := parseInts(*fsFlag)
		if err != nil {
			return fmt.Errorf("-fs: %w", err)
		}
		outcomes, err := pool.Sweep(harness.Spec{
			Protocol:      harness.Protocol(*protocol),
			Fault:         harness.Fault(*fault),
			Ed25519:       *ed25519,
			CertMode:      mode,
			NoVerifyCache: *nocache,
			TickWorkers:   *tickW,
		}, ns, fvals)
		if err != nil {
			return err
		}
		if *asCSV {
			return harness.WriteCSV(out, outcomes)
		}
		if *asPlot {
			fmt.Fprint(out, renderSweep(*protocol, outcomes))
			return nil
		}
		fmt.Fprint(out, harness.Table(outcomes))
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("choose -list, -exp <id>, -sweep, or -all")
	}
}

// renderSweep charts words vs f, one series per n.
func renderSweep(protocol string, outcomes []harness.Outcome) string {
	byN := map[int][]plot.Point{}
	for i := range outcomes {
		o := &outcomes[i]
		byN[o.Spec.N] = append(byN[o.Spec.N], plot.Point{X: float64(o.Spec.F), Y: float64(o.Words)})
	}
	ns := make([]int, 0, len(byN))
	for n := range byN {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	series := make([]plot.Series, 0, len(ns))
	for _, n := range ns {
		series = append(series, plot.Series{Label: fmt.Sprintf("n=%d", n), Points: byN[n]})
	}
	return plot.Render(plot.Config{
		Title:  fmt.Sprintf("%s: words vs f", protocol),
		XLabel: "f (actual failures)",
		YLabel: "words",
		LogY:   true,
	}, series...)
}

// parseInts parses a comma-separated integer list.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func runOne(out io.Writer, e harness.Experiment, pool harness.Pool) error {
	fmt.Fprintf(out, "== %s — %s ==\n", e.ID, e.Title)
	report, err := e.Run(pool)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Fprintln(out, report)
	return nil
}
