package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"adaptiveba/internal/explore"
	"adaptiveba/internal/types"
)

// explorePoint is one (n, f) grid point of the adversarial search: the
// worst schedule the explorer found against the word envelope.
type explorePoint struct {
	N int `json:"n"`
	F int `json:"f"`
	T int `json:"t"`
	// WorstWords is the most honest words any searched schedule extracted.
	WorstWords int64 `json:"worst_words"`
	// WorstTicks is that schedule's duration.
	WorstTicks int64 `json:"worst_ticks"`
	// Fallbacks counts processes whose fallback path ran under it.
	Fallbacks int `json:"fallbacks"`
	// Envelope is the piecewise adversarial word budget (see
	// explore.Envelope): 12·n·(f+1), plus 4·n³ once f reaches the
	// Lemma 6 threshold (n−t−1)/2 where the fallback may legally run.
	Envelope int64   `json:"envelope"`
	Ratio    float64 `json:"ratio"`
	Under    bool    `json:"under_envelope"`
	// Genome replays the worst schedule:
	//   adaptiveba-sim -explore ... (or explore.ReplaySchedule)
	Genome     string `json:"genome"`
	Evaluated  int    `json:"evaluated"`
	Violations int    `json:"violations"`
}

// exploreBench is the full report written by -bench-explore-json.
type exploreBench struct {
	Workload    string   `json:"workload"`
	Protocol    string   `json:"protocol"`
	Ns          []int    `json:"ns"`
	Seed        int64    `json:"seed"`
	Generations int      `json:"generations"`
	Population  int      `json:"population"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Host        hostMeta `json:"host"`

	Sweep []explorePoint `json:"sweep"`

	// AllUnderEnvelope is the headline: no searched schedule at any grid
	// point extracted more honest words than the O(n(f+1)) envelope.
	AllUnderEnvelope bool `json:"all_under_envelope"`
	// TotalViolations counts invariant-breaking schedules found (0 for a
	// correct implementation; each would be replayable from its genome).
	TotalViolations int `json:"total_violations"`
}

// runBenchExploreJSON runs the adversarial schedule search across the
// full (n, f) grid — every f from 0 to t at each mesh size — and writes
// the worst-schedule-vs-envelope report to path. The whole sweep is a
// pure function of (protocol, ns, seed, generations, population):
// re-running it must reproduce the committed BENCH_explore.json bytes
// (modulo gomaxprocs).
func runBenchExploreJSON(out io.Writer, path string, protocol string, ns []int, seed int64, generations, population, workers int) error {
	rep := exploreBench{
		Workload:    "adversarial schedule search: worst honest words vs O(n(f+1)) envelope",
		Protocol:    protocol,
		Ns:          ns,
		Seed:        seed,
		Generations: generations,
		Population:  population,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Host:        newHostMeta(),
	}
	rep.AllUnderEnvelope = true
	for _, n := range ns {
		params, err := types.NewParams(n)
		if err != nil {
			return err
		}
		for f := 0; f <= params.T; f++ {
			res, err := explore.Explore(explore.Config{
				Protocol:    explore.Protocol(protocol),
				N:           n,
				F:           f,
				Seed:        seed,
				Generations: generations,
				Population:  population,
				Workers:     workers,
			})
			if err != nil {
				return fmt.Errorf("explore n=%d f=%d: %w", n, f, err)
			}
			pt := explorePoint{
				N:          n,
				F:          f,
				T:          res.T,
				WorstWords: res.Best.Words,
				WorstTicks: int64(res.Best.Ticks),
				Fallbacks:  res.Best.Fallbacks,
				Envelope:   res.Envelope,
				Ratio:      res.Ratio(),
				Under:      res.UnderEnvelope(),
				Genome:     res.Best.Genome.Hex(),
				Evaluated:  res.Evaluated,
				Violations: len(res.Violating),
			}
			rep.Sweep = append(rep.Sweep, pt)
			rep.TotalViolations += pt.Violations
			if !pt.Under {
				rep.AllUnderEnvelope = false
			}
			fmt.Fprintf(out, "bench-explore-json: n=%-3d f=%-2d worst %7d words (fb=%d) envelope %8d ratio %.3f under=%v\n",
				n, f, pt.WorstWords, pt.Fallbacks, pt.Envelope, pt.Ratio, pt.Under)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "  all_under_envelope=%v violations=%d\n", rep.AllUnderEnvelope, rep.TotalViolations)
	fmt.Fprintf(out, "  wrote %s\n", path)
	if !rep.AllUnderEnvelope {
		return fmt.Errorf("envelope violation: a searched schedule beat the O(n(f+1)) budget (see %s)", path)
	}
	if rep.TotalViolations > 0 {
		return fmt.Errorf("%d invariant-violating schedules found (see %s)", rep.TotalViolations, path)
	}
	return nil
}
