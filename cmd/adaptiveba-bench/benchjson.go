package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/harness"
)

// parseCertMode maps the -certmode flag to a threshold encoding.
func parseCertMode(s string) (threshold.Mode, error) {
	switch s {
	case "compact":
		return threshold.ModeCompact, nil
	case "aggregate":
		return threshold.ModeAggregate, nil
	default:
		return 0, fmt.Errorf("-certmode: unknown mode %q (compact | aggregate)", s)
	}
}

// cryptoBenchRun is one arm of the cached-vs-uncached A/B measurement.
type cryptoBenchRun struct {
	VerifyCache bool    `json:"verify_cache"`
	WallSeconds float64 `json:"wall_seconds"`
	Runs        int     `json:"runs"`
	Words       int64   `json:"words"`
	Messages    int64   `json:"messages"`
	SignOps     int64   `json:"sign_ops"`
	// VerifyOps counts verifications actually computed: with the cache on,
	// deduplicated repeats are served from memory and not counted.
	VerifyOps   int64 `json:"verify_ops"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

// cryptoBench is the full A/B report written by -bench-json.
type cryptoBench struct {
	Protocol   string   `json:"protocol"`
	Fault      string   `json:"fault"`
	Scheme     string   `json:"scheme"`
	CertMode   string   `json:"cert_mode"`
	Ns         []int    `json:"ns"`
	Fs         []int    `json:"fs"`
	Workers    int      `json:"pool_workers"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Host       hostMeta `json:"host"`

	Cached   cryptoBenchRun `json:"cached"`
	Uncached cryptoBenchRun `json:"uncached"`

	// SpeedupWall is uncached wall time over cached wall time.
	SpeedupWall float64 `json:"speedup_wall"`
	// CSVIdentical asserts the determinism contract: both arms emitted
	// byte-identical sweep CSVs (the fast path changes CPU cost only).
	CSVIdentical bool `json:"csv_identical"`
}

// runBenchJSON runs the configured sweep twice — fast path on, then off —
// and writes the machine-readable comparison to path. It fails if the two
// arms' CSVs differ, since that would mean the cache changed semantics.
func runBenchJSON(out io.Writer, path string, pool harness.Pool, base harness.Spec, ns, fs []int) error {
	scheme := "hmac"
	if base.Ed25519 {
		scheme = "ed25519"
	}
	rep := cryptoBench{
		Protocol:   string(base.Protocol),
		Fault:      string(base.Fault),
		Scheme:     scheme,
		CertMode:   base.CertMode.String(),
		Ns:         ns,
		Fs:         fs,
		Workers:    pool.Workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host:       newHostMeta(),
	}
	measure := func(noCache bool) (cryptoBenchRun, []byte, error) {
		spec := base
		spec.NoVerifyCache = noCache
		start := time.Now()
		outcomes, err := pool.Sweep(spec, ns, fs)
		wall := time.Since(start)
		if err != nil {
			return cryptoBenchRun{}, nil, err
		}
		r := cryptoBenchRun{
			VerifyCache: !noCache,
			WallSeconds: wall.Seconds(),
			Runs:        len(outcomes),
		}
		for i := range outcomes {
			o := &outcomes[i]
			r.Words += o.Words
			r.Messages += o.Messages
			r.SignOps += o.SignOps
			r.VerifyOps += o.VerifyOps
			r.CacheHits += o.CacheHits
			r.CacheMisses += o.CacheMisses
		}
		var buf bytes.Buffer
		if err := harness.WriteCSV(&buf, outcomes); err != nil {
			return cryptoBenchRun{}, nil, err
		}
		return r, buf.Bytes(), nil
	}

	var cachedCSV, uncachedCSV []byte
	var err error
	rep.Cached, cachedCSV, err = measure(false)
	if err != nil {
		return fmt.Errorf("cached sweep: %w", err)
	}
	rep.Uncached, uncachedCSV, err = measure(true)
	if err != nil {
		return fmt.Errorf("uncached sweep: %w", err)
	}
	// CSV embeds Spec.NoVerifyCache nowhere; the rows carry only the
	// measurements, which the fast path must not perturb.
	rep.CSVIdentical = bytes.Equal(cachedCSV, uncachedCSV)
	if rep.Cached.WallSeconds > 0 {
		rep.SpeedupWall = rep.Uncached.WallSeconds / rep.Cached.WallSeconds
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench-json: %s %s/%s ns=%v fs=%v\n", rep.Protocol, rep.Scheme, rep.CertMode, ns, fs)
	fmt.Fprintf(out, "  cached    %.3fs  (verify ops %d, hits %d)\n", rep.Cached.WallSeconds, rep.Cached.VerifyOps, rep.Cached.CacheHits)
	fmt.Fprintf(out, "  uncached  %.3fs  (verify ops %d)\n", rep.Uncached.WallSeconds, rep.Uncached.VerifyOps)
	fmt.Fprintf(out, "  speedup   %.2fx  csv_identical=%v\n", rep.SpeedupWall, rep.CSVIdentical)
	fmt.Fprintf(out, "  wrote %s\n", path)
	if !rep.CSVIdentical {
		return fmt.Errorf("determinism violation: cached and uncached sweeps produced different CSVs")
	}
	return nil
}
