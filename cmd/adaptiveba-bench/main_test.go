package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"t1-bb", "t1-wba", "t1-strongba", "f1", "ablate-quorum", "dr-sigs"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunOneExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "ablate-cert"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "aggregate") {
		t.Errorf("report missing content:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "missing"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(nil, &out); err == nil {
		t.Error("no mode accepted")
	}
}

func TestSweepCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sweep", "-protocol", "wba", "-ns", "5,9", "-fs", "0,1", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "protocol,n,t,f") {
		t.Errorf("CSV header missing:\n%s", got)
	}
	if !strings.Contains(got, "wba,9,4,1") {
		t.Errorf("CSV rows missing:\n%s", got)
	}
}

func TestSweepTable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sweep", "-ns", "5", "-fs", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bb") {
		t.Errorf("table missing:\n%s", out.String())
	}
}

func TestSweepBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sweep", "-ns", "x"}, &out); err == nil {
		t.Error("bad ns accepted")
	}
	if err := run([]string{"-sweep", "-ns", ""}, &out); err == nil {
		t.Error("empty ns accepted")
	}
}

func TestSweepPlot(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sweep", "-protocol", "bb", "-ns", "11", "-fs", "0,2", "-plot"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "bb: words vs f") || !strings.Contains(got, "legend: * n=11") {
		t.Errorf("plot output:\n%s", got)
	}
}
