package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"t1-bb", "t1-wba", "t1-strongba", "f1", "ablate-quorum", "dr-sigs"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunOneExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "ablate-cert"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "aggregate") {
		t.Errorf("report missing content:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "missing"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(nil, &out); err == nil {
		t.Error("no mode accepted")
	}
}

func TestSweepCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sweep", "-protocol", "wba", "-ns", "5,9", "-fs", "0,1", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "protocol,n,t,f") {
		t.Errorf("CSV header missing:\n%s", got)
	}
	if !strings.Contains(got, "wba,9,4,1") {
		t.Errorf("CSV rows missing:\n%s", got)
	}
}

func TestSweepTable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sweep", "-ns", "5", "-fs", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bb") {
		t.Errorf("table missing:\n%s", out.String())
	}
}

func TestSweepBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sweep", "-ns", "x"}, &out); err == nil {
		t.Error("bad ns accepted")
	}
	if err := run([]string{"-sweep", "-ns", ""}, &out); err == nil {
		t.Error("empty ns accepted")
	}
}

func TestSweepPlot(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sweep", "-protocol", "bb", "-ns", "11", "-fs", "0,2", "-plot"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "bb: words vs f") || !strings.Contains(got, "legend: * n=11") {
		t.Errorf("plot output:\n%s", got)
	}
}

func TestBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-bench-json", path, "-protocol", "bb",
		"-ns", "5,9", "-fs", "0,1", "-certmode", "aggregate",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "csv_identical=true") {
		t.Errorf("summary missing determinism check:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep cryptoBench
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !rep.CSVIdentical {
		t.Error("cached and uncached CSVs differ")
	}
	if rep.Cached.Words != rep.Uncached.Words || rep.Cached.Messages != rep.Uncached.Messages {
		t.Errorf("word/message counts differ across cache modes: %+v vs %+v", rep.Cached, rep.Uncached)
	}
	if rep.Cached.VerifyOps >= rep.Uncached.VerifyOps {
		t.Errorf("cache saved no verifications: %d vs %d", rep.Cached.VerifyOps, rep.Uncached.VerifyOps)
	}
	if rep.Cached.CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
	if rep.Scheme != "hmac" || rep.CertMode != "aggregate" {
		t.Errorf("metadata wrong: scheme=%q cert_mode=%q", rep.Scheme, rep.CertMode)
	}
}

func TestBenchSimJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench_sim.json")
	var out bytes.Buffer
	err := run([]string{
		"-bench-sim-json", path, "-protocol", "bb",
		"-ns", "5,9", "-fs", "0,1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "csv_identical=true") {
		t.Errorf("summary missing determinism check:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep simBench
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !rep.CSVIdentical {
		t.Error("serial and parallel CSVs differ")
	}
	if rep.Serial.TickWorkers != 1 || rep.Parallel.TickWorkers < 2 {
		t.Errorf("arm worker counts wrong: serial=%d parallel=%d", rep.Serial.TickWorkers, rep.Parallel.TickWorkers)
	}
	if rep.Serial.Words != rep.Parallel.Words || rep.Serial.Messages != rep.Parallel.Messages || rep.Serial.Ticks != rep.Parallel.Ticks {
		t.Errorf("measurements differ across tick-worker counts: %+v vs %+v", rep.Serial, rep.Parallel)
	}
	if rep.PoolWorkers != 1 {
		t.Errorf("pool workers not pinned to 1: %d", rep.PoolWorkers)
	}
}

func TestBenchACSJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench_acs.json")
	var out bytes.Buffer
	err := run([]string{
		"-bench-acs-json", path, "-ns", "5", "-batches", "1,4", "-sessions", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep acsBench
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Results) != 1 || rep.Results[0].N != 5 {
		t.Fatalf("results: %+v", rep.Results)
	}
	group := rep.Results[0]
	if len(group.Baselines) != 2 || len(group.Arms) != 4 {
		t.Fatalf("want 2 baselines and 4 arms, got %d and %d", len(group.Baselines), len(group.Arms))
	}
	for _, arm := range group.Arms {
		if !arm.DecisionsIdentical {
			t.Errorf("f=%d batch=%d: decisions not identical across workers/windows", arm.F, arm.Batch)
		}
		if arm.F == 0 {
			if want := float64(group.N * arm.Batch); arm.RequestsPerSlot != want {
				t.Errorf("f=0 batch=%d: %.1f requests/slot, want %.1f", arm.Batch, arm.RequestsPerSlot, want)
			}
			if arm.RatioVsSingleProposer < float64(group.N)/2 {
				t.Errorf("f=0 batch=%d: ratio %.1f < n/2", arm.Batch, arm.RatioVsSingleProposer)
			}
		} else if arm.SubsetMin < group.N-group.T {
			t.Errorf("f=%d batch=%d: subset %d < n-t", arm.F, arm.Batch, arm.SubsetMin)
		}
	}
	// Larger batches amortize the per-request word cost.
	if a, b := group.Arms[0], group.Arms[1]; b.WordsPerRequest >= a.WordsPerRequest {
		t.Errorf("batch=4 words/request %.1f not below batch=1's %.1f", b.WordsPerRequest, a.WordsPerRequest)
	}
}

func TestSweepTickWorkersMatchesDefault(t *testing.T) {
	argsFor := func(extra ...string) []string {
		return append([]string{"-sweep", "-protocol", "bb", "-ns", "5,9", "-fs", "0,1", "-csv"}, extra...)
	}
	var serial, parallel bytes.Buffer
	if err := run(argsFor("-tick-workers", "1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(argsFor("-tick-workers", "8"), &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("-tick-workers changed the sweep CSV:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestSweepNoVerifyCacheMatchesDefault(t *testing.T) {
	argsFor := func(extra ...string) []string {
		return append([]string{"-sweep", "-protocol", "bb", "-ns", "5,9", "-fs", "0,1", "-certmode", "aggregate", "-csv"}, extra...)
	}
	var withCache, noCache bytes.Buffer
	if err := run(argsFor(), &withCache); err != nil {
		t.Fatal(err)
	}
	if err := run(argsFor("-no-verify-cache"), &noCache); err != nil {
		t.Fatal(err)
	}
	if withCache.String() != noCache.String() {
		t.Errorf("-no-verify-cache changed the sweep CSV:\n--- cached ---\n%s\n--- uncached ---\n%s",
			withCache.String(), noCache.String())
	}
}

func TestBadCertMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sweep", "-ns", "5", "-fs", "0", "-certmode", "bogus"}, &out); err == nil {
		t.Error("bogus certmode accepted")
	}
}

func TestBenchSvcJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench_svc.json")
	var out bytes.Buffer
	err := run([]string{
		"-bench-svc-json", path, "-svc-sizes", "16,2048", "-svc-requests", "4",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep svcBench
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Cells) != 4 { // 2 sizes × {inline, anchored}
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Requests != 4 || c.ReqPerSec <= 0 || c.WireWordsPerRequest <= 0 {
			t.Errorf("degenerate cell: %+v", c)
		}
	}
	// The acceptance property: anchored cost is payload-size-independent,
	// inline grows with the payload.
	if rep.AnchoredLargeOverSmall <= 0 || rep.AnchoredLargeOverSmall > 2 {
		t.Errorf("anchored large/small ratio %.2f not within constant factor", rep.AnchoredLargeOverSmall)
	}
	if rep.InlineLargeOverSmall <= rep.AnchoredLargeOverSmall {
		t.Errorf("inline ratio %.2f not above anchored %.2f",
			rep.InlineLargeOverSmall, rep.AnchoredLargeOverSmall)
	}
}

func TestBenchSvcBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bench-svc-json", "x.json", "-svc-sizes", "nope"}, &out); err == nil {
		t.Error("bad -svc-sizes accepted")
	}
	if err := run([]string{"-bench-svc-json", "x.json", "-svc-requests", "0"}, &out); err == nil {
		t.Error("zero -svc-requests accepted")
	}
}
