package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"adaptiveba/internal/engine"
	"adaptiveba/internal/types"
)

// benchDeltaMillis is the reference network delay δ used to convert
// simulated ticks into seconds — the transport's default TickInterval.
// In a synchronous deployment the protocols are δ-bound, not CPU-bound,
// so commits/sec over simulated time is the honest throughput number;
// WallSeconds is reported alongside as the simulator's own cost.
const benchDeltaMillis = 25

// engineBenchArm is one (n, inflight) measurement of the pipelined log.
type engineBenchArm struct {
	// Inflight is the admission window W (1 = strictly serial slots).
	Inflight int `json:"inflight"`
	// Ticks is the simulated run length; SessionTicks the per-slot
	// worst-case schedule D; Stride the gap between slot starts.
	Ticks        int64 `json:"ticks"`
	SessionTicks int64 `json:"session_ticks"`
	Stride       int64 `json:"stride"`
	Commits      int   `json:"commits"`
	Words        int64 `json:"words"`
	// CommitsPerKTick is commits per 1000 simulated ticks; CommitsPerSec
	// applies δ = 25ms per tick.
	CommitsPerKTick float64 `json:"commits_per_ktick"`
	CommitsPerSec   float64 `json:"commits_per_sec"`
	WallSeconds     float64 `json:"wall_seconds"`
	// SpeedupVsSerial is this arm's commit throughput over the W=1 arm's
	// (simulated-time basis, so it is deterministic).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// DecisionsIdentical asserts the determinism contract against the
	// serial arm: per-session decisions, per-session word and message
	// counts (the engine fingerprint) and the replayed kv state hash are
	// byte-identical.
	DecisionsIdentical bool   `json:"decisions_identical"`
	StateHash          string `json:"state_hash"`
}

// engineBenchN groups the arms for one system size.
type engineBenchN struct {
	N    int              `json:"n"`
	Arms []engineBenchArm `json:"arms"`
}

// engineBench is the full report written by -bench-engine-json.
type engineBench struct {
	Workload   string   `json:"workload"`
	DeltaMs    int      `json:"delta_ms"`
	Slots      int      `json:"slots"`
	Windows    []int    `json:"windows"`
	Ns         []int    `json:"ns"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Host       hostMeta `json:"host"`

	Results []engineBenchN `json:"results"`
}

// runBenchEngineJSON A/Bs the multi-session engine's pipelined
// replicated log against serial slot-at-a-time execution: `slots` BB
// slots with rotating proposers at every n, once per admission window,
// asserting that pipelining changes only the schedule — never a
// decision or a word count.
func runBenchEngineJSON(out io.Writer, path string, ns []int, slots int, windows []int) error {
	if slots < 1 {
		return fmt.Errorf("-sessions: need at least one slot, got %d", slots)
	}
	rep := engineBench{
		Workload:   "smr-log-over-bb",
		DeltaMs:    benchDeltaMillis,
		Slots:      slots,
		Windows:    windows,
		Ns:         ns,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host:       newHostMeta(),
	}
	for _, n := range ns {
		queues := make([][]types.Value, n)
		for s := 0; s < slots; s++ {
			p := s % n
			queues[p] = append(queues[p], types.Value(fmt.Sprintf("SET slot%d p%d", s, p)))
		}
		group := engineBenchN{N: n}
		var serialFP, serialHash string
		var serialKTick float64
		for _, w := range windows {
			start := time.Now()
			lr, err := engine.RunLog(engine.Config{
				N: n, Inflight: w, Seed: 7, Tag: "bench",
			}, queues, slots)
			wall := time.Since(start)
			if err != nil {
				return fmt.Errorf("n=%d inflight=%d: %w", n, w, err)
			}
			er := lr.Engine
			if !lr.Converged || er.TimedOut {
				return fmt.Errorf("n=%d inflight=%d: log did not converge", n, w)
			}
			arm := engineBenchArm{
				Inflight:     w,
				Ticks:        int64(er.Ticks),
				SessionTicks: int64(er.SessionTicks),
				Stride:       int64(er.Stride),
				Commits:      lr.Committed,
				Words:        er.Metrics.Honest.Words,
				WallSeconds:  wall.Seconds(),
				StateHash:    lr.StateHash,
			}
			if er.Ticks > 0 {
				arm.CommitsPerKTick = float64(lr.Committed) * 1000 / float64(er.Ticks)
				arm.CommitsPerSec = float64(lr.Committed) / (float64(er.Ticks) * benchDeltaMillis / 1000)
			}
			// The first arm is the baseline; the default window list leads
			// with W=1 (strictly serial execution).
			fp := er.Fingerprint()
			if serialFP == "" {
				serialFP, serialHash, serialKTick = fp, lr.StateHash, arm.CommitsPerKTick
			}
			arm.DecisionsIdentical = fp == serialFP && lr.StateHash == serialHash
			if serialKTick > 0 {
				arm.SpeedupVsSerial = arm.CommitsPerKTick / serialKTick
			}
			group.Arms = append(group.Arms, arm)
			fmt.Fprintf(out, "bench-engine: n=%-3d W=%-3d ticks=%-6d commits=%d  %.2f commits/ktick  %.2fx vs serial  identical=%v  (%.2fs wall)\n",
				n, w, arm.Ticks, arm.Commits, arm.CommitsPerKTick, arm.SpeedupVsSerial, arm.DecisionsIdentical, arm.WallSeconds)
			if !arm.DecisionsIdentical {
				return fmt.Errorf("determinism violation: n=%d inflight=%d diverged from serial execution", n, w)
			}
		}
		rep.Results = append(rep.Results, group)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "  wrote %s\n", path)
	return nil
}
