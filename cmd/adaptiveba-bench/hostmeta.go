package main

import "runtime"

// hostMeta records the machine a BENCH_*.json report was produced on, so
// the committed perf trajectory stays comparable across hosts. Every
// bench emitter embeds it under the "host" key.
type hostMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

func newHostMeta() hostMeta {
	return hostMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}
