// Service benchmark (-bench-svc-json): requests/sec and words/request
// through the replicated KV service as payload size grows, anchored
// (triangle architecture: only the 32-byte digest enters agreement)
// against inline (the full payload rides the committed command). The
// report is the PR's acceptance artifact: anchored words/request must
// stay within a constant factor of the small-value baseline while
// inline grows linearly with the payload.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"adaptiveba"
)

// svcCell is one (payload size, value placement) measurement.
type svcCell struct {
	PayloadBytes int     `json:"payload_bytes"`
	Mode         string  `json:"mode"` // inline | anchored
	Requests     int     `json:"requests"`
	WallSeconds  float64 `json:"wall_seconds"`
	ReqPerSec    float64 `json:"req_per_sec"`
	Rounds       int     `json:"rounds"`
	// Words is the paper's metric (each value weighs one word regardless
	// of size); WireWords is the metered payload bytes divided by the
	// 8-byte word size — the number that exposes inline's linear growth.
	Words               int64   `json:"words"`
	WordsPerRequest     float64 `json:"words_per_request"`
	WireBytes           int64   `json:"wire_bytes"`
	WireWordsPerRequest float64 `json:"wire_words_per_request"`
	Blobs               int     `json:"blobs"`
}

// svcBench is the full report written by -bench-svc-json.
type svcBench struct {
	Sizes      []int    `json:"payload_sizes"`
	Requests   int      `json:"requests_per_cell"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Host       hostMeta `json:"host"`

	Cells []svcCell `json:"cells"`

	// AnchoredLargeOverSmall is the acceptance ratio: anchored
	// wire-words/request at the largest payload over the smallest —
	// near 1 when the triangle architecture holds (only digests travel).
	AnchoredLargeOverSmall float64 `json:"anchored_large_over_small_wire_words"`
	// InlineLargeOverSmall is the same ratio for inline commits — large,
	// since the whole payload rides through agreement.
	InlineLargeOverSmall float64 `json:"inline_large_over_small_wire_words"`
}

// runBenchSvcJSON measures every (size, mode) cell over a live
// server+client loopback session and writes the report to path.
func runBenchSvcJSON(out io.Writer, path string, sizes []int, requests int) error {
	rep := svcBench{
		Sizes:      sizes,
		Requests:   requests,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host:       newHostMeta(),
	}
	scratch, err := os.MkdirTemp("", "adaptiveba-bench-svc-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	for _, size := range sizes {
		for _, mode := range []string{"inline", "anchored"} {
			cell, err := runSvcCell(filepath.Join(scratch, fmt.Sprintf("%s-%d", mode, size)),
				size, mode, requests)
			if err != nil {
				return fmt.Errorf("cell %s/%dB: %w", mode, size, err)
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Fprintf(out, "bench-svc: %-8s %6dB  %7.1f req/s  %7.1f wire-words/req  (%d rounds)\n",
				cell.Mode, cell.PayloadBytes, cell.ReqPerSec, cell.WireWordsPerRequest, cell.Rounds)
		}
	}

	small, large := sizes[0], sizes[len(sizes)-1]
	ratio := func(mode string) float64 {
		var s, l float64
		for _, c := range rep.Cells {
			if c.Mode != mode {
				continue
			}
			if c.PayloadBytes == small {
				s = c.WireWordsPerRequest
			}
			if c.PayloadBytes == large {
				l = c.WireWordsPerRequest
			}
		}
		if s == 0 {
			return 0
		}
		return l / s
	}
	rep.AnchoredLargeOverSmall = ratio("anchored")
	rep.InlineLargeOverSmall = ratio("inline")

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench-svc: anchored %dB costs %.2fx the %dB baseline (inline: %.2fx)\n",
		large, rep.AnchoredLargeOverSmall, small, rep.InlineLargeOverSmall)
	fmt.Fprintf(out, "  wrote %s\n", path)
	return nil
}

// runSvcCell stands up a fresh service, drives `requests` puts of
// size-byte payloads through one loopback client, and reads the cost
// counters back.
func runSvcCell(dir string, size int, mode string, requests int) (svcCell, error) {
	// Placement is forced by the inline threshold: "anchored" puts every
	// payload above it, "inline" keeps every payload below it.
	inlineMax := 1
	if mode == "inline" {
		inlineMax = size + 1
	}
	ctx := context.Background()
	svc, err := adaptiveba.ServeContext(ctx, "127.0.0.1:0",
		adaptiveba.WithBlobDir(dir),
		adaptiveba.WithInlineMax(inlineMax),
		adaptiveba.WithMeasuredBytes(),
		adaptiveba.WithServeSeed(7),
	)
	if err != nil {
		return svcCell{}, err
	}
	defer svc.Close()
	c, err := adaptiveba.DialContext(ctx, svc.Addr())
	if err != nil {
		return svcCell{}, err
	}
	defer c.Close()

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	for i := 0; i < requests; i++ {
		key := []byte(fmt.Sprintf("k%04d", i))
		// Vary one byte so anchored cells store distinct blobs rather than
		// deduplicating into a single ref.
		payload[0] = byte(i)
		if err := c.Put(ctx, key, payload); err != nil {
			return svcCell{}, err
		}
	}
	// A read barrier flushes any buffered writes before we sample stats.
	if _, err := c.Get(ctx, []byte("k0000")); err != nil {
		return svcCell{}, err
	}
	wall := time.Since(start)

	rep, err := c.Verify(ctx)
	if err != nil || !rep.OK() {
		return svcCell{}, fmt.Errorf("post-run verify failed: %v", err)
	}
	st := svc.Stats()
	cell := svcCell{
		PayloadBytes: size,
		Mode:         mode,
		Requests:     requests,
		WallSeconds:  wall.Seconds(),
		Rounds:       st.Rounds,
		Words:        st.Words,
		WireBytes:    st.Bytes,
		Blobs:        rep.Blobs,
	}
	if wall > 0 {
		cell.ReqPerSec = float64(requests) / wall.Seconds()
	}
	if requests > 0 {
		cell.WordsPerRequest = float64(st.Words) / float64(requests)
		cell.WireWordsPerRequest = float64(st.Bytes) / 8 / float64(requests)
	}
	return cell, nil
}
