package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"adaptiveba/internal/engine"
	"adaptiveba/internal/types"
)

// acsBenchBaseline is the single-proposer pipelined log (engine.RunLog)
// measured at the same (n, f) — one command per slot, the yardstick the
// ACS arms are ratioed against.
type acsBenchBaseline struct {
	F        int     `json:"f"`
	Slots    int     `json:"slots"`
	Commits  int     `json:"commits"`
	Words    int64   `json:"words"`
	Ticks    int64   `json:"ticks"`
	PerKTick float64 `json:"commits_per_ktick"`
	// PerSlot is commits/slots (< 1 when crashed proposers skip slots).
	PerSlot        float64 `json:"commits_per_slot"`
	WordsPerCommit float64 `json:"words_per_commit"`
}

// acsBenchArm is one (f, batch) measurement of the batched ACS log.
type acsBenchArm struct {
	F     int `json:"f"`
	Batch int `json:"batch"`
	// Ticks is the simulated run length; SessionTicks the per-round
	// worst-case schedule D; Stride the gap between round starts.
	Ticks        int64 `json:"ticks"`
	SessionTicks int64 `json:"session_ticks"`
	Stride       int64 `json:"stride"`
	// Committed counts committed commands; SubsetMin is the smallest
	// committed subset over the rounds (≥ n−t inside the fault model).
	Committed int   `json:"committed"`
	SubsetMin int   `json:"subset_min"`
	Words     int64 `json:"words"`
	// RequestsPerKTick is committed commands per 1000 simulated ticks;
	// RequestsPerSlot is committed/rounds — the headline throughput
	// number (n×batch at f=0 vs the baseline's ≤ 1).
	RequestsPerKTick float64 `json:"requests_per_ktick"`
	RequestsPerSlot  float64 `json:"requests_per_slot"`
	// WordsPerRequest is the amortized word cost per committed command;
	// it falls with the batch size while the baseline's is fixed.
	WordsPerRequest float64 `json:"words_per_request"`
	// RatioVsSingleProposer is RequestsPerSlot over the same-f baseline's
	// commits per slot (the ISSUE target: ≥ n/2 at f=0).
	RatioVsSingleProposer float64 `json:"ratio_vs_single_proposer"`
	// DecisionsIdentical asserts the determinism contract: the engine
	// fingerprint and the replayed kv state hash are byte-identical when
	// the run repeats with 8 tick workers and again with a different
	// admission window.
	DecisionsIdentical bool    `json:"decisions_identical"`
	StateHash          string  `json:"state_hash"`
	WallSeconds        float64 `json:"wall_seconds"`
}

// acsBenchN groups the measurements for one system size.
type acsBenchN struct {
	N         int                `json:"n"`
	T         int                `json:"t"`
	Baselines []acsBenchBaseline `json:"baselines"`
	Arms      []acsBenchArm      `json:"arms"`
}

// acsBench is the full report written by -bench-acs-json.
type acsBench struct {
	Workload   string   `json:"workload"`
	DeltaMs    int      `json:"delta_ms"`
	Rounds     int      `json:"rounds"`
	Batches    []int    `json:"batches"`
	Ns         []int    `json:"ns"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Host       hostMeta `json:"host"`

	Results []acsBenchN `json:"results"`
}

// acsBenchQueues builds per-proposer command queues deep enough to feed
// every round at the given batch size.
func acsBenchQueues(n, rounds, batch int) [][]types.Value {
	queues := make([][]types.Value, n)
	for p := range queues {
		for j := 0; j < rounds*batch; j++ {
			queues[p] = append(queues[p], types.Value(fmt.Sprintf("SET k%d-%d v%d", p, j, j)))
		}
	}
	return queues
}

// runBenchACSJSON A/Bs the batched ACS log against the single-proposer
// pipelined log over the (n, batch, f) grid: at every grid point the ACS
// round commits an ≥ n−t subset of n proposer batches per slot where the
// baseline commits at most one command, and each arm re-runs with 8 tick
// workers and a different admission window to assert that decisions are
// byte-identical. Fails if any f=0 arm commits fewer than n/2× the
// baseline's per-slot requests.
func runBenchACSJSON(out io.Writer, path string, ns, batches []int, rounds int) error {
	if rounds < 1 {
		return fmt.Errorf("-sessions: need at least one round, got %d", rounds)
	}
	rep := acsBench{
		Workload:   "acs-batched-log-vs-single-proposer",
		DeltaMs:    benchDeltaMillis,
		Rounds:     rounds,
		Batches:    batches,
		Ns:         ns,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host:       newHostMeta(),
	}
	for _, n := range ns {
		params, err := types.NewParams(n)
		if err != nil {
			return err
		}
		group := acsBenchN{N: n, T: params.T}
		faults := []int{0, params.T}
		basePerSlot := make(map[int]float64, len(faults))
		for _, f := range faults {
			queues := make([][]types.Value, n)
			for s := 0; s < rounds; s++ {
				p := s % n
				queues[p] = append(queues[p], types.Value(fmt.Sprintf("SET slot%d p%d", s, p)))
			}
			lr, err := engine.RunLog(engine.Config{N: n, F: f, Inflight: 2, Seed: 7, Tag: "bench"}, queues, rounds)
			if err != nil {
				return fmt.Errorf("baseline n=%d f=%d: %w", n, f, err)
			}
			if !lr.Converged {
				return fmt.Errorf("baseline n=%d f=%d: log did not converge", n, f)
			}
			base := acsBenchBaseline{
				F:       f,
				Slots:   rounds,
				Commits: lr.Committed,
				Words:   lr.Engine.Metrics.Honest.Words,
				Ticks:   int64(lr.Engine.Ticks),
				PerSlot: float64(lr.Committed) / float64(rounds),
			}
			if base.Ticks > 0 {
				base.PerKTick = float64(base.Commits) * 1000 / float64(base.Ticks)
			}
			if base.Commits > 0 {
				base.WordsPerCommit = float64(base.Words) / float64(base.Commits)
			}
			basePerSlot[f] = base.PerSlot
			group.Baselines = append(group.Baselines, base)
			fmt.Fprintf(out, "bench-acs: n=%-3d f=%-2d baseline  %d commits over %d slots  %.1f words/commit\n",
				n, f, base.Commits, rounds, base.WordsPerCommit)
		}
		for _, f := range faults {
			for _, batch := range batches {
				cfg := engine.Config{N: n, F: f, Inflight: 2, Seed: 7, Tag: "bench"}
				start := time.Now()
				ref, err := engine.RunACSLog(cfg, acsBenchQueues(n, rounds, batch), rounds, batch)
				wall := time.Since(start)
				if err != nil {
					return fmt.Errorf("acs n=%d f=%d batch=%d: %w", n, f, batch, err)
				}
				if !ref.Converged {
					return fmt.Errorf("acs n=%d f=%d batch=%d: round did not converge", n, f, batch)
				}
				arm := acsBenchArm{
					F:            f,
					Batch:        batch,
					Ticks:        int64(ref.Engine.Ticks),
					SessionTicks: int64(ref.Engine.SessionTicks),
					Stride:       int64(ref.Engine.Stride),
					Committed:    ref.Committed,
					SubsetMin:    ref.SubsetMin,
					Words:        ref.Engine.Metrics.Honest.Words,
					StateHash:    ref.StateHash,
					WallSeconds:  wall.Seconds(),
				}
				if arm.Ticks > 0 {
					arm.RequestsPerKTick = float64(arm.Committed) * 1000 / float64(arm.Ticks)
				}
				arm.RequestsPerSlot = float64(arm.Committed) / float64(rounds)
				if arm.Committed > 0 {
					arm.WordsPerRequest = float64(arm.Words) / float64(arm.Committed)
				}
				if basePerSlot[f] > 0 {
					arm.RatioVsSingleProposer = arm.RequestsPerSlot / basePerSlot[f]
				}
				// Determinism: repeat with 8 tick workers, then with a
				// different admission window; fingerprints and state hashes
				// must match byte for byte.
				arm.DecisionsIdentical = true
				for _, variant := range []engine.Config{
					{N: n, F: f, Inflight: 2, Seed: 7, Tag: "bench", TickWorkers: 8},
					{N: n, F: f, Inflight: 1, Seed: 7, Tag: "bench"},
				} {
					vr, err := engine.RunACSLog(variant, acsBenchQueues(n, rounds, batch), rounds, batch)
					if err != nil {
						return fmt.Errorf("acs variant n=%d f=%d batch=%d: %w", n, f, batch, err)
					}
					if vr.Engine.Fingerprint() != ref.Engine.Fingerprint() || vr.StateHash != ref.StateHash {
						arm.DecisionsIdentical = false
					}
				}
				group.Arms = append(group.Arms, arm)
				fmt.Fprintf(out, "bench-acs: n=%-3d f=%-2d batch=%-3d %d commands  subset≥%d  %.1f req/slot (%.1fx vs single)  %.1f words/req  identical=%v  (%.2fs wall)\n",
					n, f, batch, arm.Committed, arm.SubsetMin, arm.RequestsPerSlot, arm.RatioVsSingleProposer, arm.WordsPerRequest, arm.DecisionsIdentical, arm.WallSeconds)
				if !arm.DecisionsIdentical {
					return fmt.Errorf("determinism violation: n=%d f=%d batch=%d diverged across workers/windows", n, f, batch)
				}
				if f == 0 && arm.RatioVsSingleProposer < float64(n)/2 {
					return fmt.Errorf("throughput target missed: n=%d batch=%d committed %.1fx the single-proposer log, want >= n/2 = %.1f",
						n, batch, arm.RatioVsSingleProposer, float64(n)/2)
				}
			}
		}
		rep.Results = append(rep.Results, group)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "  wrote %s\n", path)
	return nil
}
