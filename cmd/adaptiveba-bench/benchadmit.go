package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"adaptiveba/internal/engine"
	"adaptiveba/internal/types"
)

// admitBenchArm is one scheduling policy's measurement of a cell.
type admitBenchArm struct {
	Scheduler string `json:"scheduler"`
	// Ticks is the simulated run length; SessionTicks the per-slot
	// worst-case duration D (identical between arms — only the schedule
	// differs).
	Ticks        int64 `json:"ticks"`
	SessionTicks int64 `json:"session_ticks"`
	Commits      int   `json:"commits"`
	Words        int64 `json:"words"`
	// CommitsPerKTick is commits per 1000 simulated ticks; CommitsPerSec
	// applies δ = 25ms per tick.
	CommitsPerKTick float64 `json:"commits_per_ktick"`
	CommitsPerSec   float64 `json:"commits_per_sec"`
	WallSeconds     float64 `json:"wall_seconds"`
	StateHash       string  `json:"state_hash"`
}

// admitBenchCell is one (n, f, W) static-vs-eager comparison.
type admitBenchCell struct {
	N        int `json:"n"`
	F        int `json:"f"`
	Inflight int `json:"inflight"`

	Static admitBenchArm `json:"static"`
	Eager  admitBenchArm `json:"eager"`

	// SpeedupKTick is eager commit throughput over static on the
	// simulated-time basis (deterministic).
	SpeedupKTick float64 `json:"speedup_ktick"`
	// DecisionsIdentical asserts the A/B contract: the eager arm's
	// per-session decisions, word and message counts (the engine
	// fingerprint) and replayed kv state hash match the static arm's
	// byte for byte.
	DecisionsIdentical bool `json:"decisions_identical"`
}

// admitBench is the full report written by -bench-admit-json.
type admitBench struct {
	Workload string   `json:"workload"`
	DeltaMs  int      `json:"delta_ms"`
	Slots    int      `json:"slots"`
	Windows  []int    `json:"windows"`
	Ns       []int    `json:"ns"`
	Host     hostMeta `json:"host"`

	Cells []admitBenchCell `json:"cells"`
}

// runBenchAdmitJSON A/Bs the decision-driven (eager) session schedule
// against the static stride over the (n, f ∈ {0, t}, W) grid: the same
// rotating-proposer BB log under both policies, asserting that eager
// retirement changes only the schedule — never a decision, a word
// count, or the replayed state — while retiring slots as soon as they
// decide. The f=0 cells are where early decisions leave the most slack
// under the worst-case stride, so that is where the speedup lands.
func runBenchAdmitJSON(out io.Writer, path string, ns []int, slots int, windows []int) error {
	if slots < 1 {
		return fmt.Errorf("-sessions: need at least one slot, got %d", slots)
	}
	rep := admitBench{
		Workload: "smr-log-over-bb",
		DeltaMs:  benchDeltaMillis,
		Slots:    slots,
		Windows:  windows,
		Ns:       ns,
		Host:     newHostMeta(),
	}
	for _, n := range ns {
		queues := make([][]types.Value, n)
		for s := 0; s < slots; s++ {
			p := s % n
			queues[p] = append(queues[p], types.Value(fmt.Sprintf("SET slot%d p%d", s, p)))
		}
		for _, f := range []int{0, (n - 1) / 2} {
			for _, w := range windows {
				cell := admitBenchCell{N: n, F: f, Inflight: w}
				var staticFP, eagerFP string
				for _, sched := range []engine.Scheduler{engine.Static, engine.Eager} {
					start := time.Now()
					lr, err := engine.RunLog(engine.Config{
						N: n, F: f, Inflight: w, Seed: 7, Tag: "bench", Scheduler: sched,
					}, queues, slots)
					wall := time.Since(start)
					if err != nil {
						return fmt.Errorf("n=%d f=%d W=%d %s: %w", n, f, w, sched.Name(), err)
					}
					er := lr.Engine
					if !lr.Converged || er.TimedOut {
						return fmt.Errorf("n=%d f=%d W=%d %s: log did not converge", n, f, w, sched.Name())
					}
					arm := admitBenchArm{
						Scheduler:    sched.Name(),
						Ticks:        int64(er.Ticks),
						SessionTicks: int64(er.SessionTicks),
						Commits:      lr.Committed,
						Words:        er.Metrics.Honest.Words,
						WallSeconds:  wall.Seconds(),
						StateHash:    lr.StateHash,
					}
					if er.Ticks > 0 {
						arm.CommitsPerKTick = float64(lr.Committed) * 1000 / float64(er.Ticks)
						arm.CommitsPerSec = float64(lr.Committed) / (float64(er.Ticks) * benchDeltaMillis / 1000)
					}
					if sched == engine.Static {
						cell.Static, staticFP = arm, er.Fingerprint()
					} else {
						cell.Eager, eagerFP = arm, er.Fingerprint()
					}
				}
				// The contract check compares full fingerprints, not just the
				// JSON summary: decisions, per-session words/messages, state.
				cell.DecisionsIdentical = staticFP == eagerFP && cell.Static.StateHash == cell.Eager.StateHash
				if cell.Static.CommitsPerKTick > 0 {
					cell.SpeedupKTick = cell.Eager.CommitsPerKTick / cell.Static.CommitsPerKTick
				}
				rep.Cells = append(rep.Cells, cell)
				fmt.Fprintf(out, "bench-admit: n=%-3d f=%-2d W=%-3d static=%-5d eager=%-5d ticks  %.2fx commits/ktick  identical=%v\n",
					n, f, w, cell.Static.Ticks, cell.Eager.Ticks, cell.SpeedupKTick, cell.DecisionsIdentical)
				if !cell.DecisionsIdentical {
					return fmt.Errorf("determinism violation: n=%d f=%d W=%d eager diverged from static", n, f, w)
				}
			}
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "  wrote %s\n", path)
	return nil
}
