package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"adaptiveba/internal/transport"
)

// netArm is one side of the transport data-plane A/B at a fixed n: the
// batched path (encode-once + coalescing outboxes) or the legacy
// synchronous per-message path.
type netArm struct {
	NsPerBroadcast     float64 `json:"ns_per_broadcast"`
	NsPerMessage       float64 `json:"ns_per_message"`
	AllocsPerBroadcast float64 `json:"allocs_per_broadcast"`
	AllocsPerMessage   float64 `json:"allocs_per_message"`
	BytesPerBroadcast  float64 `json:"bytes_per_broadcast"`
	Iterations         int     `json:"iterations"`
	Drops              int64   `json:"drops"`
}

// netPoint is the A/B comparison for one mesh size.
type netPoint struct {
	N        int    `json:"n"`
	Messages int    `json:"messages_per_broadcast"`
	Batched  netArm `json:"batched"`
	Legacy   netArm `json:"legacy"`
	// Speedup is legacy ns/op over batched ns/op (>1 means batching wins).
	Speedup float64 `json:"speedup"`
	// AllocReduction is legacy allocs/op minus batched allocs/op.
	AllocReduction float64 `json:"alloc_reduction"`
}

// netBench is the full report written by -bench-net-json.
type netBench struct {
	Workload   string   `json:"workload"`
	Ns         []int    `json:"ns"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Host       hostMeta `json:"host"`

	Sweep []netPoint `json:"sweep"`

	// SteadyStateAllocsPerMessage is testing.AllocsPerRun over warmed
	// batched broadcasts, divided by messages per broadcast — the pooled
	// send path's zero-allocation claim.
	SteadyStateAllocsPerMessage float64 `json:"steady_state_allocs_per_message"`

	// CSVIdentical and DecisionsIdentical assert the determinism
	// contract: a full loopback BB cluster emits byte-identical metrics
	// CSVs and the same decisions on both send paths.
	CSVIdentical       bool `json:"csv_identical"`
	DecisionsIdentical bool `json:"decisions_identical"`
}

// measureNetArm benchmarks Broadcast-to-drain on one SendBench arm.
// Drain is inside the timed region so the batched arm pays for its
// flushes: the comparison is end-to-end bytes-on-the-wire, not
// enqueue-and-run.
func measureNetArm(n int, legacy bool) (netArm, error) {
	sb, err := transport.NewSendBench(n, legacy)
	if err != nil {
		return netArm{}, err
	}
	defer sb.Close()
	for i := 0; i < 100; i++ { // warm pools, buffers, and TCP windows
		sb.Broadcast()
	}
	sb.Drain()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sb.Broadcast()
		}
		sb.Drain()
	})
	msgs := sb.MessagesPerBroadcast()
	arm := netArm{
		NsPerBroadcast:     float64(res.NsPerOp()),
		NsPerMessage:       float64(res.NsPerOp()) / float64(msgs),
		AllocsPerBroadcast: float64(res.AllocsPerOp()),
		AllocsPerMessage:   float64(res.AllocsPerOp()) / float64(msgs),
		BytesPerBroadcast:  float64(res.AllocedBytesPerOp()),
		Iterations:         res.N,
		Drops:              sb.Snapshot().NetDrops,
	}
	if arm.Drops > 0 {
		return arm, fmt.Errorf("n=%d legacy=%v: %d frames dropped under benchmark load; arms are not comparable", n, legacy, arm.Drops)
	}
	return arm, nil
}

// runBenchNetJSON measures the batched and legacy send paths against
// real loopback TCP sinks at each mesh size, checks the pooled path's
// steady-state allocation count, verifies cluster-level determinism
// across the two paths, and writes the machine-readable report to path.
func runBenchNetJSON(out io.Writer, path string, ns []int) error {
	rep := netBench{
		Workload:   "signed bb sender-broadcast over loopback tcp",
		Ns:         ns,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host:       newHostMeta(),
	}
	for _, n := range ns {
		batched, err := measureNetArm(n, false)
		if err != nil {
			return err
		}
		legacy, err := measureNetArm(n, true)
		if err != nil {
			return err
		}
		pt := netPoint{
			N:              n,
			Messages:       n - 1,
			Batched:        batched,
			Legacy:         legacy,
			AllocReduction: legacy.AllocsPerBroadcast - batched.AllocsPerBroadcast,
		}
		if batched.NsPerBroadcast > 0 {
			pt.Speedup = legacy.NsPerBroadcast / batched.NsPerBroadcast
		}
		rep.Sweep = append(rep.Sweep, pt)
		fmt.Fprintf(out, "bench-net-json: n=%-3d batched %9.0f ns/op %6.2f allocs/op | legacy %9.0f ns/op %6.2f allocs/op | speedup %.2fx\n",
			n, batched.NsPerBroadcast, batched.AllocsPerBroadcast,
			legacy.NsPerBroadcast, legacy.AllocsPerBroadcast, pt.Speedup)
	}

	// Zero-alloc claim on the pooled path, at the largest mesh size.
	{
		n := ns[len(ns)-1]
		sb, err := transport.NewSendBench(n, false)
		if err != nil {
			return err
		}
		for i := 0; i < 200; i++ {
			sb.Broadcast()
		}
		sb.Drain()
		allocs := testing.AllocsPerRun(200, sb.Broadcast)
		sb.Drain()
		sb.Close()
		rep.SteadyStateAllocsPerMessage = allocs / float64(n-1)
	}

	// Determinism across send paths on a full loopback cluster.
	batched, err := transport.RunLoopbackCluster(5, false, 20*time.Millisecond)
	if err != nil {
		return fmt.Errorf("batched cluster: %w", err)
	}
	legacy, err := transport.RunLoopbackCluster(5, true, 20*time.Millisecond)
	if err != nil {
		return fmt.Errorf("legacy cluster: %w", err)
	}
	rep.CSVIdentical = bytes.Equal(batched.CSV, legacy.CSV)
	rep.DecisionsIdentical = len(batched.Decisions) == len(legacy.Decisions)
	for i := range batched.Decisions {
		if !batched.Decisions[i].Equal(legacy.Decisions[i]) {
			rep.DecisionsIdentical = false
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "  steady-state %.3f allocs/message  csv_identical=%v decisions_identical=%v\n",
		rep.SteadyStateAllocsPerMessage, rep.CSVIdentical, rep.DecisionsIdentical)
	fmt.Fprintf(out, "  wrote %s\n", path)
	if !rep.CSVIdentical || !rep.DecisionsIdentical {
		return fmt.Errorf("determinism violation: batched and legacy send paths disagree (csv_identical=%v decisions_identical=%v)",
			rep.CSVIdentical, rep.DecisionsIdentical)
	}
	return nil
}
