package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"adaptiveba/internal/harness"
)

// simBenchRun is one arm of the serial-vs-parallel tick-engine A/B.
type simBenchRun struct {
	TickWorkers int     `json:"tick_workers"`
	WallSeconds float64 `json:"wall_seconds"`
	Runs        int     `json:"runs"`
	Words       int64   `json:"words"`
	Messages    int64   `json:"messages"`
	Ticks       int64   `json:"ticks"`
}

// simBench is the full A/B report written by -bench-sim-json.
type simBench struct {
	Protocol string `json:"protocol"`
	Fault    string `json:"fault"`
	Scheme   string `json:"scheme"`
	CertMode string `json:"cert_mode"`
	Ns       []int  `json:"ns"`
	Fs       []int  `json:"fs"`
	// PoolWorkers is pinned to 1 for both arms: run-level parallelism
	// would confound the measurement, which isolates intra-run tick
	// stepping (the engine's -tick-workers axis).
	PoolWorkers int      `json:"pool_workers"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Host        hostMeta `json:"host"`

	Serial   simBenchRun `json:"serial"`
	Parallel simBenchRun `json:"parallel"`

	// SpeedupWall is serial wall time over parallel wall time.
	SpeedupWall float64 `json:"speedup_wall"`
	// CSVIdentical asserts the determinism contract: both arms emitted
	// byte-identical sweep CSVs (worker count changes CPU cost only).
	CSVIdentical bool `json:"csv_identical"`
}

// runBenchSimJSON runs the configured sweep twice — tick-workers=1, then
// tick-workers=GOMAXPROCS — and writes the machine-readable comparison to
// path. It fails if the two arms' CSVs differ, since that would mean the
// parallel engine changed the observable schedule.
func runBenchSimJSON(out io.Writer, path string, base harness.Spec, ns, fs []int) error {
	scheme := "hmac"
	if base.Ed25519 {
		scheme = "ed25519"
	}
	pool := harness.Pool{Workers: 1}
	rep := simBench{
		Protocol:    string(base.Protocol),
		Fault:       string(base.Fault),
		Scheme:      scheme,
		CertMode:    base.CertMode.String(),
		Ns:          ns,
		Fs:          fs,
		PoolWorkers: 1,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Host:        newHostMeta(),
	}
	measure := func(tickWorkers int) (simBenchRun, []byte, error) {
		spec := base
		spec.TickWorkers = tickWorkers
		start := time.Now()
		outcomes, err := pool.Sweep(spec, ns, fs)
		wall := time.Since(start)
		if err != nil {
			return simBenchRun{}, nil, err
		}
		r := simBenchRun{
			TickWorkers: tickWorkers,
			WallSeconds: wall.Seconds(),
			Runs:        len(outcomes),
		}
		for i := range outcomes {
			o := &outcomes[i]
			r.Words += o.Words
			r.Messages += o.Messages
			r.Ticks += int64(o.Ticks)
		}
		var buf bytes.Buffer
		if err := harness.WriteCSV(&buf, outcomes); err != nil {
			return simBenchRun{}, nil, err
		}
		return r, buf.Bytes(), nil
	}

	// The parallel arm uses GOMAXPROCS workers, but never fewer than 2:
	// on a single-core host tick-workers=GOMAXPROCS would reduce to the
	// serial arm and the csv_identical assertion would be vacuous. With 2
	// workers the parallel scheduling path genuinely runs (goroutines
	// interleave even on one core); the speedup column then reflects the
	// host's core count.
	parallelWorkers := rep.GOMAXPROCS
	if parallelWorkers < 2 {
		parallelWorkers = 2
	}
	var serialCSV, parallelCSV []byte
	var err error
	rep.Serial, serialCSV, err = measure(1)
	if err != nil {
		return fmt.Errorf("serial sweep: %w", err)
	}
	rep.Parallel, parallelCSV, err = measure(parallelWorkers)
	if err != nil {
		return fmt.Errorf("parallel sweep: %w", err)
	}
	rep.CSVIdentical = bytes.Equal(serialCSV, parallelCSV)
	if rep.Parallel.WallSeconds > 0 {
		rep.SpeedupWall = rep.Serial.WallSeconds / rep.Parallel.WallSeconds
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench-sim-json: %s %s/%s ns=%v fs=%v\n", rep.Protocol, rep.Scheme, rep.CertMode, ns, fs)
	fmt.Fprintf(out, "  serial    %.3fs  (tick-workers 1)\n", rep.Serial.WallSeconds)
	fmt.Fprintf(out, "  parallel  %.3fs  (tick-workers %d)\n", rep.Parallel.WallSeconds, rep.Parallel.TickWorkers)
	fmt.Fprintf(out, "  speedup   %.2fx  csv_identical=%v\n", rep.SpeedupWall, rep.CSVIdentical)
	fmt.Fprintf(out, "  wrote %s\n", path)
	if !rep.CSVIdentical {
		return fmt.Errorf("determinism violation: serial and parallel sweeps produced different CSVs")
	}
	return nil
}
