// Command adaptiveba-sim runs one protocol in the deterministic simulator
// and prints the decision plus the paper's cost metrics.
//
// Examples:
//
//	adaptiveba-sim -protocol bb -n 21 -f 3
//	adaptiveba-sim -protocol strongba -n 101 -f 0
//	adaptiveba-sim -protocol wba -n 9 -f 3 -fault replay -trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/engine"
	"adaptiveba/internal/explore"
	"adaptiveba/internal/harness"
	"adaptiveba/internal/types"
)

// parseCertMode maps the -certmode flag to a threshold encoding.
func parseCertMode(s string) (threshold.Mode, error) {
	switch s {
	case "compact":
		return threshold.ModeCompact, nil
	case "aggregate":
		return threshold.ModeAggregate, nil
	default:
		return 0, fmt.Errorf("-certmode: unknown mode %q (compact | aggregate)", s)
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adaptiveba-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("adaptiveba-sim", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "bb", "protocol: bb | wba | strongba | acs | dolev-strong | echo-bb | fallback | floodset | committee")
		n        = fs.Int("n", 9, "number of processes")
		f        = fs.Int("f", 0, "number of corrupted processes")
		fault    = fs.String("fault", "crash", "fault pattern: crash | crash-leader | replay")
		inputs   = fs.String("inputs", "unanimous", "input assignment: unanimous | distinct")
		value    = fs.String("value", "v", "broadcast / unanimous input value")
		seed     = fs.Int64("seed", 1, "seed for randomized adversaries")
		ed25519  = fs.Bool("ed25519", false, "use real Ed25519 signatures")
		certmode = fs.String("certmode", "compact", "threshold certificate encoding: compact | aggregate")
		nocache  = fs.Bool("no-verify-cache", false, "disable the shared verification fast path (A/B baseline; metrics are unaffected)")
		trace    = fs.Bool("trace", false, "print the message trace")
		layers   = fs.Bool("layers", true, "print the per-layer word breakdown")
		reps     = fs.Int("reps", 1, "repetitions with derived seeds (> 1 prints a min/median/max summary)")
		workers  = fs.Int("parallel", 0, "worker count for -reps runs (0 = one per CPU, 1 = sequential)")
		tickW    = fs.Int("tick-workers", 0, "per-tick worker count inside one run (0 = one per CPU, 1 = serial); any value yields identical output")
		sessions = fs.Int("sessions", 1, "run this many concurrent instances of the protocol through the multi-session engine (bb | wba | strongba | acs only)")
		acsMode  = fs.Bool("acs", false, "run the batched replicated log: -sessions ACS rounds of n proposer batches each (uses -n, -f, -batch, -inflight, -tick-workers)")
		batch    = fs.Int("batch", 1, "commands per proposer batch (-acs rounds and -protocol acs)")
		inflight = fs.Int("inflight", 0, "engine admission window: max sessions in flight (0 = all at once, 1 = strictly serial)")
		maxqueue = fs.Int("maxqueue", 0, "engine queue bound behind the window: 0 = unbounded, > 0 sheds requests beyond inflight+maxqueue, < 0 sheds everything beyond the window")
		sched    = fs.String("sched", "static", "engine session scheduling policy: static (stride slots) | eager (decision-driven retirement + early ACS vote boundary)")
		expl     = fs.Bool("explore", false, "search adversary schedules for the worst case instead of running one spec (bb | wba; uses -n, -f, -seed, -parallel)")
		gens     = fs.Int("generations", 4, "explore: search generations")
		popsize  = fs.Int("population", 8, "explore: schedules per generation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch < 1 {
		return fmt.Errorf("-batch: need at least 1, got %d", *batch)
	}
	policy, err := engine.SchedulerByName(*sched)
	if err != nil {
		return err
	}
	if *acsMode {
		rounds := *sessions
		if rounds < 1 {
			rounds = 1
		}
		return runACS(out, engine.Config{
			N: *n, F: *f, Inflight: *inflight, Seed: *seed,
			Ed25519: *ed25519, TickWorkers: *tickW, Scheduler: policy,
		}, rounds, *batch)
	}
	if *expl {
		return runExplore(out, explore.Config{
			Protocol:    explore.Protocol(*protocol),
			N:           *n,
			F:           *f,
			Seed:        *seed,
			Generations: *gens,
			Population:  *popsize,
			Workers:     *workers,
		})
	}

	mode, err := parseCertMode(*certmode)
	if err != nil {
		return err
	}
	spec := harness.Spec{
		Protocol:      harness.Protocol(*protocol),
		N:             *n,
		F:             *f,
		Fault:         harness.Fault(*fault),
		Inputs:        harness.Inputs(*inputs),
		Value:         types.Value(*value),
		Seed:          *seed,
		Ed25519:       *ed25519,
		CertMode:      mode,
		NoVerifyCache: *nocache,
		TickWorkers:   *tickW,
		Batch:         *batch,
		Sched:         policy,
	}
	if *trace {
		spec.Trace = out
	}
	if *sessions > 1 {
		return runEngine(out, spec, *sessions, *inflight, *maxqueue)
	}
	if *reps > 1 {
		return runReps(out, spec, *reps, *workers)
	}
	o, err := harness.Run(spec)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "protocol    %s\n", o.Spec.Protocol)
	fmt.Fprintf(out, "n, t, f     %d, %d, %d\n", o.Spec.N, (o.Spec.N-1)/2, o.Spec.F)
	fmt.Fprintf(out, "decision    %s\n", o.Decision)
	fmt.Fprintf(out, "agreement   %v (all decided: %v)\n", o.Agreement, o.Decided)
	fmt.Fprintf(out, "words       %d   (%.1f per process)\n", o.Words, float64(o.Words)/float64(o.Spec.N))
	fmt.Fprintf(out, "messages    %d\n", o.Messages)
	fmt.Fprintf(out, "ticks (δ)   %d\n", o.Ticks)
	fmt.Fprintf(out, "fallback    %d processes\n", o.FallbackCount)
	if !spec.NoVerifyCache {
		fmt.Fprintf(out, "verify $    %d hits / %d misses\n", o.CacheHits, o.CacheMisses)
	}
	if *layers && len(o.ByLayer) > 0 {
		fmt.Fprintln(out, "\nper-layer words (Figure 1 composition):")
		names := make([]string, 0, len(o.ByLayer))
		for l := range o.ByLayer {
			names = append(names, l)
		}
		sort.Strings(names)
		for _, l := range names {
			s := o.ByLayer[l]
			fmt.Fprintf(out, "  %-24s %8d words %8d msgs\n", l, s.Words, s.Messages)
		}
	}
	if !o.Agreement || !o.Decided {
		return fmt.Errorf("run violated agreement or termination")
	}
	return nil
}

// runExplore runs the adversary-schedule search and prints its report:
// the per-generation worst-schedule table plus the overall worst schedule
// against the O(n(f+1)) envelope, with the replayable genome dump. The
// report is byte-identical for a given seed at any -parallel value.
func runExplore(out io.Writer, cfg explore.Config) error {
	res, err := explore.Explore(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Report())
	if len(res.Violating) > 0 {
		return fmt.Errorf("explore found %d invariant violations", len(res.Violating))
	}
	return nil
}

// strideLabel names the admission cadence: the stride under the static
// policy, decision-driven under eager (where no stride exists).
func strideLabel(rep *engine.Report) string {
	if rep.Scheduler == "eager" {
		return "decision-driven"
	}
	return fmt.Sprintf("stride %d", rep.Stride)
}

// runEngine pushes the spec through the multi-session engine and prints
// the admission outcome plus per-session results.
func runEngine(out io.Writer, spec harness.Spec, sessions, inflight, maxqueue int) error {
	rep, err := harness.RunEngine(spec, sessions, inflight, maxqueue)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "protocol    %s × %d sessions\n", spec.Protocol, sessions)
	fmt.Fprintf(out, "n, t, f     %d, %d, %d\n", rep.N, rep.T, rep.F)
	fmt.Fprintf(out, "admission   %d accepted, %d queued, %d rejected (window %d)\n",
		rep.Accepted, rep.Queued, rep.Rejected, inflight)
	fmt.Fprintf(out, "schedule    %s, %s, session %d, total %d ticks (δ)\n",
		rep.Scheduler, strideLabel(rep), rep.SessionTicks, rep.Ticks)
	fmt.Fprintf(out, "words       %d total\n", rep.Metrics.Honest.Words)
	fmt.Fprintln(out, "\nper-session:")
	violated := false
	for _, s := range rep.Sessions {
		if s.Rejected {
			fmt.Fprintf(out, "  %-6s rejected (admission policy)\n", s.Name)
			continue
		}
		fmt.Fprintf(out, "  %-6s start %-5d decision %-10q agree=%-5v words %-6d fallback %d\n",
			s.Name, s.Start, []byte(s.Decision), s.Agreement, s.Words, s.FallbackProcs)
		if !s.Agreement || !s.AllDecided {
			violated = true
		}
	}
	if violated || rep.TimedOut {
		return fmt.Errorf("engine run violated agreement or termination")
	}
	return nil
}

// runACS drives the batched replicated log (-acs): `rounds` ACS rounds,
// each committing a ≥ n−t subset of n proposer batches, flattened into
// one total order and replayed through the kv state machine. The
// per-round table shows the committed subset and request count; the
// footer gives the amortized word cost per committed command.
func runACS(out io.Writer, cfg engine.Config, rounds, batch int) error {
	queues := make([][]types.Value, cfg.N)
	for p := range queues {
		for j := 0; j < rounds*batch; j++ {
			queues[p] = append(queues[p], types.Value(fmt.Sprintf("SET k%d-%d v%d", p, j, j)))
		}
	}
	rep, err := engine.RunACSLog(cfg, queues, rounds, batch)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "protocol    acs × %d rounds, batch %d\n", rounds, batch)
	fmt.Fprintf(out, "n, t, f     %d, %d, %d\n", rep.Engine.N, rep.Engine.T, rep.Engine.F)
	fmt.Fprintf(out, "schedule    %s, %s, round %d, total %d ticks (δ)\n",
		rep.Engine.Scheduler, strideLabel(rep.Engine), rep.Engine.SessionTicks, rep.Engine.Ticks)
	fmt.Fprintln(out, "\nper-round:")
	for _, r := range rep.Rounds {
		fmt.Fprintf(out, "  round %-3d subset %d/%d   %d commands\n",
			r.Round, r.Subset, rep.Engine.N, r.Requests)
	}
	words := rep.Engine.Metrics.Honest.Words
	fmt.Fprintf(out, "\ncommitted   %d commands (min subset %d)\n", rep.Committed, rep.SubsetMin)
	fmt.Fprintf(out, "words       %d total", words)
	if rep.Committed > 0 {
		fmt.Fprintf(out, "   (%.1f per committed command)", float64(words)/float64(rep.Committed))
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "state hash  %s\n", rep.StateHash)
	if len(rep.RejectedCommands) > 0 {
		fmt.Fprintf(out, "rejected    %d commands\n", len(rep.RejectedCommands))
	}
	if !rep.Converged {
		return fmt.Errorf("acs log violated agreement or termination")
	}
	return nil
}

// runReps executes the spec reps times with DeriveSeed-assigned seeds on
// a worker pool and prints the aggregate. Output is identical for every
// -parallel value (the runner's determinism guarantee).
func runReps(out io.Writer, spec harness.Spec, reps, workers int) error {
	seeds := make([]int64, reps)
	for r := range seeds {
		seeds[r] = harness.DeriveSeed(spec.Seed, int64(spec.N), int64(spec.F), int64(r))
	}
	st, err := harness.Pool{Workers: workers}.Stats(spec, seeds)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "protocol    %s\n", spec.Protocol)
	fmt.Fprintf(out, "n, f, runs  %d, %d, %d\n", spec.N, spec.F, st.Runs)
	fmt.Fprintf(out, "words       min %d   median %d   max %d\n", st.Words.Min, st.Words.Median, st.Words.Max)
	fmt.Fprintf(out, "ticks (δ)   min %d   median %d   max %d\n", st.Ticks.Min, st.Ticks.Median, st.Ticks.Max)
	fmt.Fprintf(out, "violations  %d\n", st.Violations)
	if st.Violations > 0 {
		return fmt.Errorf("%d of %d runs violated agreement or termination", st.Violations, st.Runs)
	}
	return nil
}
