// Command adaptiveba-sim runs one protocol in the deterministic simulator
// and prints the decision plus the paper's cost metrics.
//
// Examples:
//
//	adaptiveba-sim -protocol bb -n 21 -f 3
//	adaptiveba-sim -protocol strongba -n 101 -f 0
//	adaptiveba-sim -protocol wba -n 9 -f 3 -fault replay -trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"adaptiveba/internal/harness"
	"adaptiveba/internal/types"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adaptiveba-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("adaptiveba-sim", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "bb", "protocol: bb | wba | strongba | dolev-strong | echo-bb | fallback")
		n        = fs.Int("n", 9, "number of processes")
		f        = fs.Int("f", 0, "number of corrupted processes")
		fault    = fs.String("fault", "crash", "fault pattern: crash | crash-leader | replay")
		inputs   = fs.String("inputs", "unanimous", "input assignment: unanimous | distinct")
		value    = fs.String("value", "v", "broadcast / unanimous input value")
		seed     = fs.Int64("seed", 1, "seed for randomized adversaries")
		ed25519  = fs.Bool("ed25519", false, "use real Ed25519 signatures")
		trace    = fs.Bool("trace", false, "print the message trace")
		layers   = fs.Bool("layers", true, "print the per-layer word breakdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := harness.Spec{
		Protocol: harness.Protocol(*protocol),
		N:        *n,
		F:        *f,
		Fault:    harness.Fault(*fault),
		Inputs:   harness.Inputs(*inputs),
		Value:    types.Value(*value),
		Seed:     *seed,
		Ed25519:  *ed25519,
	}
	if *trace {
		spec.Trace = out
	}
	o, err := harness.Run(spec)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "protocol    %s\n", o.Spec.Protocol)
	fmt.Fprintf(out, "n, t, f     %d, %d, %d\n", o.Spec.N, (o.Spec.N-1)/2, o.Spec.F)
	fmt.Fprintf(out, "decision    %s\n", o.Decision)
	fmt.Fprintf(out, "agreement   %v (all decided: %v)\n", o.Agreement, o.Decided)
	fmt.Fprintf(out, "words       %d   (%.1f per process)\n", o.Words, float64(o.Words)/float64(o.Spec.N))
	fmt.Fprintf(out, "messages    %d\n", o.Messages)
	fmt.Fprintf(out, "ticks (δ)   %d\n", o.Ticks)
	fmt.Fprintf(out, "fallback    %d processes\n", o.FallbackCount)
	if *layers && len(o.ByLayer) > 0 {
		fmt.Fprintln(out, "\nper-layer words (Figure 1 composition):")
		names := make([]string, 0, len(o.ByLayer))
		for l := range o.ByLayer {
			names = append(names, l)
		}
		sort.Strings(names)
		for _, l := range names {
			s := o.ByLayer[l]
			fmt.Fprintf(out, "  %-24s %8d words %8d msgs\n", l, s.Words, s.Messages)
		}
	}
	if !o.Agreement || !o.Decided {
		return fmt.Errorf("run violated agreement or termination")
	}
	return nil
}
