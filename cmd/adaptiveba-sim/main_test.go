package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBB(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "bb", "-n", "9", "-f", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"protocol    bb", "decision    v", "agreement   true", "per-layer"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunStrongBATrace(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "strongba", "-n", "5", "-trace"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sba/input") {
		t.Errorf("trace missing:\n%.300s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "nope", "-n", "5"}, &out); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-n", "5", "-f", "3"}, &out); err == nil {
		t.Error("f > t accepted")
	}
}

func TestRunAggregateWithCacheStats(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "bb", "-n", "9", "-certmode", "aggregate"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verify $") {
		t.Errorf("cache stats missing:\n%s", out.String())
	}
}

func TestRunNoVerifyCacheMatchesDefault(t *testing.T) {
	// The fast path must not perturb any reported metric; only the cache
	// stat line itself may differ.
	var cached, uncached bytes.Buffer
	args := []string{"-protocol", "bb", "-n", "9", "-f", "1", "-certmode", "aggregate"}
	if err := run(args, &cached); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-no-verify-cache"), &uncached); err != nil {
		t.Fatal(err)
	}
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "verify $") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(cached.String()) != strip(uncached.String()) {
		t.Errorf("-no-verify-cache changed metrics:\n--- cached ---\n%s\n--- uncached ---\n%s",
			cached.String(), uncached.String())
	}
	if strings.Contains(uncached.String(), "verify $") {
		t.Error("cache stat line printed with cache off")
	}
}

func TestRunACSMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-acs", "-n", "5", "-f", "1", "-sessions", "2", "-batch", "3", "-inflight", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"protocol    acs × 2 rounds, batch 3",
		"subset 4/5",
		"committed   24 commands",
		"state hash  ",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// -acs output is deterministic across tick-worker counts.
	var par bytes.Buffer
	if err := run([]string{"-acs", "-n", "5", "-f", "1", "-sessions", "2", "-batch", "3", "-inflight", "2", "-tick-workers", "4"}, &par); err != nil {
		t.Fatal(err)
	}
	if out.String() != par.String() {
		t.Errorf("-tick-workers changed -acs output:\n--- serial ---\n%s\n--- parallel ---\n%s", out.String(), par.String())
	}
}

func TestRunProtocolACS(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "acs", "-n", "5", "-batch", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"protocol    acs", "agreement   true"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if err := run([]string{"-acs", "-n", "5", "-batch", "0"}, &out); err == nil {
		t.Error("batch=0 accepted")
	}
}

func TestRunRejectsBadCertMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "5", "-certmode", "bogus"}, &out); err == nil {
		t.Error("bogus certmode accepted")
	}
}
