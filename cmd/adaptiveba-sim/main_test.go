package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBB(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "bb", "-n", "9", "-f", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"protocol    bb", "decision    v", "agreement   true", "per-layer"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunStrongBATrace(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "strongba", "-n", "5", "-trace"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sba/input") {
		t.Errorf("trace missing:\n%.300s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "nope", "-n", "5"}, &out); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-n", "5", "-f", "3"}, &out); err == nil {
		t.Error("f > t accepted")
	}
}
