package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestClusterBB(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "bb", "-n", "5", "-value", "hello", "-tick", "10ms"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Count(got, `decided "hello"`) != 5 {
		t.Errorf("not all nodes decided hello:\n%s", got)
	}
}

func TestClusterStrongBAWithCrash(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "strongba", "-n", "5", "-crash", "1", "-value", "1", "-tick", "10ms"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// 4 live nodes, all deciding 1 despite the crash (via the fallback).
	if strings.Count(got, `decided "0x01"`) != 4 {
		t.Errorf("live nodes did not all decide 1:\n%s", got)
	}
}

func TestClusterValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "2"}, &out); err == nil {
		t.Error("tiny n accepted")
	}
	if err := run([]string{"-n", "5", "-crash", "3"}, &out); err == nil {
		t.Error("crash > t accepted")
	}
	if err := run([]string{"-protocol", "nope", "-n", "3"}, &out); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run([]string{"-protocol", "strongba", "-n", "3", "-value", "x"}, &out); err == nil {
		t.Error("non-binary strongba value accepted")
	}
}
