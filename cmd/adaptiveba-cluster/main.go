// Command adaptiveba-cluster spawns a full n-node cluster over localhost
// TCP in one process — the quickest way to watch the protocols run on a
// real network stack. Crashed nodes are simply never started (fail-stop
// from the beginning, the common case the adaptive protocols optimize).
//
//	adaptiveba-cluster -protocol bb -n 5 -value "ship it"
//	adaptiveba-cluster -protocol strongba -n 9 -crash 2
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/core/strongba"
	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/metrics"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/transport"
	"adaptiveba/internal/types"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adaptiveba-cluster:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("adaptiveba-cluster", flag.ContinueOnError)
	var (
		protocol   = fs.String("protocol", "bb", "protocol: bb | wba | strongba")
		n          = fs.Int("n", 5, "number of processes")
		crash      = fs.Int("crash", 0, "number of crashed (never-started) processes, taken from the highest ids")
		value      = fs.String("value", "1", "broadcast / unanimous input value (strongba: 0 or 1)")
		tick       = fs.Duration("tick", 15*time.Millisecond, "tick interval (δ)")
		dial       = fs.Duration("dial", 3*time.Second, "per-peer connection deadline (crashed peers are written off after it)")
		timeout    = fs.Duration("timeout", 60*time.Second, "overall deadline")
		flushEvery = fs.Int("flush-every", 0, "per-peer outbox bound in bytes before backpressure drops (0 = default 4MiB)")
		legacySend = fs.Bool("legacy-send", false, "use the synchronous per-message send path instead of batched outboxes")

		chaosSeed      = fs.Int64("chaos-seed", 1, "seed for the chaos fault schedule (per-node streams are derived from it)")
		chaosDrop      = fs.Float64("chaos-drop", 0, "per-frame chaos loss probability (0..1); enables chaos injection")
		chaosDelay     = fs.Float64("chaos-delay", 0, "per-frame chaos jitter probability (0..1); enables chaos injection")
		chaosMaxDelay  = fs.Duration("chaos-max-delay", 0, "chaos jitter bound (0 = tick/4); past the tick interval it violates the δ-bound")
		chaosPartition = fs.Int("chaos-partition-every", 0, "open a 1-tick parity-cut partition every N ticks (0 = off)")
		chaosFlap      = fs.Int("chaos-flap-every", 0, "flap one seeded-chosen peer for 1 tick every N ticks (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	params, err := types.NewParams(*n)
	if err != nil {
		return err
	}
	if *crash < 0 || *crash > params.T {
		return fmt.Errorf("crash count %d exceeds t=%d", *crash, params.T)
	}

	ring, err := sig.NewHMACRing(*n, []byte("cluster"))
	if err != nil {
		return err
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("cluster-dealer"))

	// A crashed node must still own a port (peers dial it and time out on
	// sends), so reserve addresses for everyone but only start n-crash.
	addrs, err := reserveAddrs(*n)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	type lineOut struct {
		id   types.ProcessID
		line string
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		lines []lineOut
		fail  error
	)
	chaos := transport.ChaosConfig{
		Seed:           *chaosSeed,
		DropRate:       *chaosDrop,
		DelayRate:      *chaosDelay,
		MaxDelay:       *chaosMaxDelay,
		PartitionEvery: types.Tick(*chaosPartition),
		FlapEvery:      types.Tick(*chaosFlap),
	}

	alive := *n - *crash
	for i := 0; i < alive; i++ {
		id := types.ProcessID(i)
		machine, err := buildMachine(*protocol, params, crypto, id, types.Value(*value))
		if err != nil {
			return err
		}
		nodeChaos := chaos
		if nodeChaos.Enabled() {
			// Distinct per-node verdict streams from the one cluster seed.
			nodeChaos.Seed = chaos.Seed + int64(i)*0x9e3779b9
		}
		rec := metrics.NewRecorder()
		node, err := transport.NewNode(transport.Config{
			Params:       params,
			Crypto:       crypto,
			ID:           id,
			Addrs:        addrs,
			Registry:     transport.NewFullRegistry(),
			TickInterval: *tick,
			DialTimeout:  *dial,
			Recorder:     rec,
			FlushBytes:   *flushEvery,
			LegacySend:   *legacySend,
			Chaos:        nodeChaos,
			// The crashed peers never answer the barrier; nodes proceed
			// when the live ones are ready.
			Quorum: alive,
		}, machine)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			decision, err := node.Run(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if fail == nil {
					fail = fmt.Errorf("node %v: %w", id, err)
				}
				return
			}
			rep := rec.Snapshot()
			line := fmt.Sprintf(
				"node %v @ %-21s decided %-12q  %4d msgs %5d words %7d bytes",
				id, addrs[id], decision, rep.Honest.Messages, rep.Honest.Words, rep.Honest.Bytes)
			if nodeChaos.Enabled() {
				line += fmt.Sprintf("  chaos: %d dropped %d delayed", rep.ChaosDrops, rep.ChaosDelays)
			}
			lines = append(lines, lineOut{id: id, line: line})
		}()
	}
	wg.Wait()
	if fail != nil {
		return fail
	}
	sort.Slice(lines, func(a, b int) bool { return lines[a].id < lines[b].id })
	header := fmt.Sprintf("%s over TCP: n=%d, crashed=%d", *protocol, *n, *crash)
	if chaos.Enabled() {
		header += fmt.Sprintf(", chaos seed=%d drop=%.2f delay=%.2f", chaos.Seed, chaos.DropRate, chaos.DelayRate)
	}
	fmt.Fprintln(out, header)
	for _, l := range lines {
		fmt.Fprintln(out, " ", l.line)
	}
	return nil
}

// reserveAddrs picks n free localhost ports.
func reserveAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs, nil
}

func buildMachine(protocol string, params types.Params, crypto *proto.Crypto, id types.ProcessID, value types.Value) (proto.Machine, error) {
	switch protocol {
	case "bb":
		return bb.NewMachine(bb.Config{
			Params: params, Crypto: crypto, ID: id,
			Sender: 0, Input: value, Tag: "cluster/bb",
		}), nil
	case "wba":
		return wba.NewMachine(wba.Config{
			Params: params, Crypto: crypto, ID: id,
			Input: value, Predicate: valid.NonBottom(), Tag: "cluster/wba",
		}), nil
	case "strongba":
		var bit types.Value
		switch string(value) {
		case "0":
			bit = types.Zero
		case "1":
			bit = types.One
		default:
			return nil, fmt.Errorf("strongba input must be 0 or 1, got %q", value)
		}
		return strongba.NewMachine(strongba.Config{
			Params: params, Crypto: crypto, ID: id, Input: bit, Tag: "cluster/sba",
		})
	default:
		return nil, fmt.Errorf("unknown protocol %q", protocol)
	}
}
