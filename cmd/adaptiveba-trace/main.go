// Command adaptiveba-trace runs one protocol in the simulator and renders
// a per-round timeline of its communication: which rounds were silent,
// which leader drove which phase, where certificates flowed, and where the
// fallback exploded. The compressed view is what makes the adaptive
// mechanism visible — silent phases literally print as nothing.
//
//	adaptiveba-trace -protocol wba -n 9 -f 1
//	adaptiveba-trace -protocol bb -n 9 -f 3 -expand
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"adaptiveba/internal/harness"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adaptiveba-trace:", err)
		os.Exit(1)
	}
}

// event is one observed send.
type event struct {
	tick    types.Tick
	from    types.ProcessID
	to      types.ProcessID
	session string
	typ     string
	honest  bool
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("adaptiveba-trace", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "wba", "protocol: bb | wba | strongba | bb-via-ba | dolev-strong | echo-bb | fallback | floodset")
		n        = fs.Int("n", 9, "number of processes")
		f        = fs.Int("f", 0, "number of corrupted processes")
		fault    = fs.String("fault", "crash", "fault pattern")
		expand   = fs.Bool("expand", false, "print every message instead of per-tick summaries")
		maxTicks = fs.Int("max-ticks", 0, "only render the first N ticks (0 = all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var events []event
	spec := harness.Spec{
		Protocol: harness.Protocol(*protocol),
		N:        *n,
		F:        *f,
		Fault:    harness.Fault(*fault),
		OnSend: func(now types.Tick, m sim.Message, honest bool) {
			typ := "?"
			if m.Payload != nil {
				typ = m.Payload.Type()
			}
			events = append(events, event{
				tick: now, from: m.From, to: m.To,
				session: m.Session, typ: typ, honest: honest,
			})
		},
	}
	o, err := harness.Run(spec)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "%s run: n=%d t=%d f=%d — decision %s, %d words, %d ticks\n\n",
		*protocol, *n, (*n-1)/2, *f, o.Decision, o.Words, o.Ticks)
	if *expand {
		renderExpanded(out, events, *maxTicks)
	} else {
		renderSummary(out, events, *maxTicks)
	}
	return nil
}

// renderSummary prints one line per (tick, message type): the compressed
// timeline in which silent rounds simply do not appear.
func renderSummary(out io.Writer, events []event, limit int) {
	type key struct {
		tick types.Tick
		typ  string
	}
	type agg struct {
		count   int
		froms   map[types.ProcessID]bool
		byz     int
		session string
	}
	byKey := make(map[key]*agg)
	var maxTick types.Tick
	for _, e := range events {
		if limit > 0 && int(e.tick) >= limit {
			continue
		}
		k := key{tick: e.tick, typ: e.typ}
		a := byKey[k]
		if a == nil {
			a = &agg{froms: make(map[types.ProcessID]bool), session: e.session}
			byKey[k] = a
		}
		a.count++
		a.froms[e.from] = true
		if !e.honest {
			a.byz++
		}
		if e.tick > maxTick {
			maxTick = e.tick
		}
	}
	keys := make([]key, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].tick != keys[b].tick {
			return keys[a].tick < keys[b].tick
		}
		return keys[a].typ < keys[b].typ
	})
	lastTick := types.Tick(-1)
	for _, k := range keys {
		a := byKey[k]
		tickLabel := "      "
		if k.tick != lastTick {
			if lastTick >= 0 && k.tick > lastTick+1 {
				fmt.Fprintf(out, "        ~ %d silent ticks ~\n", k.tick-lastTick-1)
			}
			tickLabel = fmt.Sprintf("t=%-4d", k.tick)
			lastTick = k.tick
		}
		senders := senderSummary(a.froms)
		byzNote := ""
		if a.byz > 0 {
			byzNote = fmt.Sprintf("  [%d byzantine]", a.byz)
		}
		fmt.Fprintf(out, "%s  %-22s ×%-4d from %s%s\n", tickLabel, k.typ, a.count, senders, byzNote)
	}
}

// renderExpanded prints every message.
func renderExpanded(out io.Writer, events []event, limit int) {
	for _, e := range events {
		if limit > 0 && int(e.tick) >= limit {
			return
		}
		tag := ""
		if !e.honest {
			tag = " [byz]"
		}
		session := e.session
		if session == "" {
			session = "-"
		}
		fmt.Fprintf(out, "t=%-4d %v -> %v  %-22s %s%s\n", e.tick, e.from, e.to, e.typ, session, tag)
	}
}

// senderSummary compacts a sender set into p0..p4-style ranges.
func senderSummary(froms map[types.ProcessID]bool) string {
	ids := make([]int, 0, len(froms))
	for id := range froms {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	if len(ids) == 0 {
		return "-"
	}
	var parts []string
	start, prev := ids[0], ids[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprintf("p%d", start))
		} else {
			parts = append(parts, fmt.Sprintf("p%d..p%d", start, prev))
		}
	}
	for _, id := range ids[1:] {
		if id == prev+1 {
			prev = id
			continue
		}
		flush()
		start, prev = id, id
	}
	flush()
	return strings.Join(parts, ",")
}
