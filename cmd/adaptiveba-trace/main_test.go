package main

import (
	"bytes"
	"strings"
	"testing"

	"adaptiveba/internal/types"
)

func TestTraceSummary(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "wba", "-n", "9", "-f", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"wba run:", "wba/propose", "wba/finalized", "from p2"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q:\n%s", want, got)
		}
	}
	// The crashed p1's phase is silent: no propose from p1.
	if strings.Contains(got, "wba/propose") && strings.Contains(got, "from p1\n") {
		t.Errorf("crashed leader's phase not silent:\n%s", got)
	}
}

func TestTraceExpanded(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "strongba", "-n", "5", "-expand", "-max-ticks", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "p1 -> p0") {
		t.Errorf("expanded trace:\n%s", out.String())
	}
}

func TestTraceBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-protocol", "nope"}, &out); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestSenderSummaryRanges(t *testing.T) {
	froms := map[types.ProcessID]bool{0: true, 1: true, 2: true, 5: true, 7: true, 8: true}
	if got := senderSummary(froms); got != "p0..p2,p5,p7..p8" {
		t.Errorf("senderSummary = %q", got)
	}
	if got := senderSummary(nil); got != "-" {
		t.Errorf("empty = %q", got)
	}
	if got := senderSummary(map[types.ProcessID]bool{3: true}); got != "p3" {
		t.Errorf("single = %q", got)
	}
}
