// Public API, option/context surface: functional options, typed
// sentinel errors, context-aware entry points, and the multi-session
// RunMany fan-out over the engine. This is the documented default
// surface; the Options-struct entry points in adaptiveba.go remain as
// deprecated wrappers.
package adaptiveba

import (
	"context"
	"errors"
	"fmt"
	"io"

	"adaptiveba/internal/engine"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// Option configures a run. Options compose left to right:
//
//	BroadcastContext(ctx, 9, value, adaptiveba.WithFaults(2), adaptiveba.WithSeed(7))
type Option func(*Options)

// WithFaults corrupts f processes (0 ≤ f ≤ t).
func WithFaults(f int) Option { return func(o *Options) { o.Faults = f } }

// WithPattern selects how the corrupted processes misbehave (default
// FaultCrash).
func WithPattern(p FaultPattern) Option { return func(o *Options) { o.Pattern = p } }

// WithSeed drives randomized fault patterns.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithRealSignatures switches from fast HMAC authenticators to Ed25519.
func WithRealSignatures() Option { return func(o *Options) { o.RealSignatures = true } }

// WithTrace streams a per-message trace of the run to w.
func WithTrace(w io.Writer) Option { return func(o *Options) { o.Trace = w } }

// WithThreshold overrides the corruption threshold t (default
// floor((n-1)/2), the paper's optimal n = 2t+1). A threshold the
// process count cannot support — n < 2t+1 leaves no honest quorum —
// fails with ErrNoQuorum.
func WithThreshold(t int) Option { return func(o *Options) { o.Threshold = t } }

// WithInflight bounds how many sessions a multi-session run (RunMany,
// the pipelined replicated log) keeps in flight concurrently: 1 runs
// them strictly serially, 0 (the default) pipelines as deeply as the
// workload allows. Per-session decisions and word counts are identical
// at every window size; only wall time and tick count change.
func WithInflight(w int) Option { return func(o *Options) { o.Inflight = w } }

// Scheduler selects the session admission/retirement policy of a
// multi-session run (RunMany, the replicated log). It re-exports
// engine.Scheduler; the two policies are Static and Eager.
type Scheduler = engine.Scheduler

// Scheduling policies.
var (
	// Static is the stride schedule (the default): session k starts at
	// tick k·ceil(D/W) and holds its slot for the full worst-case
	// duration D regardless of when it decides.
	Static = engine.Static
	// Eager retires a session the tick after it decides and admits the
	// next queued session into the freed slot immediately; ACS sessions
	// additionally start each subset vote as soon as the corresponding
	// broadcast delivers (early-stopping vote boundary). Decisions,
	// words, and messages are byte-identical to Static — only the
	// schedule, and hence the tick count, changes.
	Eager = engine.Eager
)

// WithScheduler selects the session scheduling policy of a
// multi-session run (Static or Eager; the default is Static).
func WithScheduler(s Scheduler) Option { return func(o *Options) { o.Sched = s } }

// WithEager is shorthand for WithScheduler(Eager): decision-driven
// session retirement and the early-stopping ACS vote boundary.
func WithEager() Option { return func(o *Options) { o.Sched = Eager } }

// sentinel is a typed API error chained onto the broad legacy class, so
// errors.Is matches both the precise identity (ErrBadN) and the legacy
// one (ErrOptions) that existing callers test for.
type sentinel struct {
	msg  string
	base error
}

func (e *sentinel) Error() string { return e.msg }
func (e *sentinel) Unwrap() error { return e.base }

// Typed sentinel errors returned by validation and cancellation paths.
// Each chains to the legacy class it refines: errors.Is(err, ErrBadN)
// implies errors.Is(err, ErrOptions).
var (
	// ErrBadN reports an unusable process count (n < 3).
	ErrBadN error = &sentinel{"adaptiveba: invalid process count", ErrOptions}
	// ErrTooManyFaults reports f outside 0..t.
	ErrTooManyFaults error = &sentinel{"adaptiveba: fault count exceeds threshold", ErrOptions}
	// ErrNoQuorum reports a threshold override the process count cannot
	// support (n < 2t+1 leaves no honest quorum).
	ErrNoQuorum error = &sentinel{"adaptiveba: no honest quorum possible", ErrOptions}
	// ErrCanceled reports a run aborted by its context; it wraps the
	// context's own error, so errors.Is(err, context.Canceled) works too.
	ErrCanceled = errors.New("adaptiveba: run canceled")
)

// buildOptions folds functional options into the legacy struct.
func buildOptions(n int, opts []Option) Options {
	o := Options{N: n}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// haltFrom adapts a context into the simulator's per-tick halt poll.
// The run is fully synchronous — no goroutines outlive it — so polling
// at tick granularity makes cancellation prompt and leak-free.
func haltFrom(ctx context.Context) func(types.Tick) bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func(types.Tick) bool {
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
}

// mapCanceled rewrites the simulator's halt error into ErrCanceled,
// chaining the context's cause.
func mapCanceled(ctx context.Context, err error) error {
	if err != nil && errors.Is(err, sim.ErrHalted) {
		return fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
	}
	return err
}

// BroadcastContext runs the adaptive Byzantine Broadcast (paper
// Algorithms 1–2) with process 0 as the designated sender broadcasting
// value. The context cancels the run promptly (at tick granularity)
// with ErrCanceled. See Broadcast for the protocol's guarantees.
func BroadcastContext(ctx context.Context, n int, value []byte, opts ...Option) (*Result, error) {
	res, err := broadcastRun(buildOptions(n, opts), haltFrom(ctx), value)
	return res, mapCanceled(ctx, err)
}

// WeakAgreeContext runs the adaptive weak Byzantine Agreement
// (Algorithms 3–4): inputs[i] is process i's proposal, predicate the
// validity predicate (nil accepts any non-empty value). The context
// cancels the run promptly with ErrCanceled. See WeakAgree.
func WeakAgreeContext(ctx context.Context, n int, inputs [][]byte, predicate func([]byte) bool, opts ...Option) (*Result, error) {
	res, err := weakAgreeRun(buildOptions(n, opts), haltFrom(ctx), inputs, predicate)
	return res, mapCanceled(ctx, err)
}

// StrongAgreeBinaryContext runs the binary strong BA (Algorithm 5):
// inputs[i] is process i's bit. The context cancels the run promptly
// with ErrCanceled. See StrongAgreeBinary.
func StrongAgreeBinaryContext(ctx context.Context, n int, inputs []bool, opts ...Option) (*Result, error) {
	res, err := strongAgreeBinaryRun(buildOptions(n, opts), haltFrom(ctx), inputs)
	return res, mapCanceled(ctx, err)
}

// StrongAgreeContext runs multivalued strong Byzantine Agreement (the
// non-adaptive A_fallback row of the problem family). The context
// cancels the run promptly with ErrCanceled. See StrongAgree.
func StrongAgreeContext(ctx context.Context, n int, inputs [][]byte, opts ...Option) (*Result, error) {
	res, err := strongAgreeRun(buildOptions(n, opts), haltFrom(ctx), inputs)
	return res, mapCanceled(ctx, err)
}

// ReplicateLogContext runs the totally-ordered replicated log with
// rotating proposers (see ReplicateLog). WithInflight(w) pipelines the
// log: slot s+1's broadcast starts while slot s may still be running
// its fallback, multiplying commit throughput by up to w without
// changing any committed entry. The context cancels the run promptly
// with ErrCanceled.
func ReplicateLogContext(ctx context.Context, n int, queues [][][]byte, slots int, opts ...Option) (*LogResult, error) {
	res, err := replicateLogRun(buildOptions(n, opts), haltFrom(ctx), queues, slots)
	return res, mapCanceled(ctx, err)
}

// Request describes one agreement instance for RunMany. Build requests
// with BroadcastRequest, WeakAgreeRequest, or StrongAgreeBinaryRequest.
type Request struct {
	// N is the process count; every request in one RunMany batch must
	// agree on it (0 inherits the batch's value).
	N int
	// Opts contribute run-level options, merged in request order across
	// the batch (the batch shares one simulated deployment, so faults,
	// signatures, and the in-flight window are per-batch, not
	// per-request).
	Opts []Option

	kind      engine.Kind
	sender    int
	value     []byte
	inputs    [][]byte
	bits      []bool
	predicate func([]byte) bool
}

// BroadcastRequest asks for one adaptive BB instance with the given
// designated sender broadcasting value.
func BroadcastRequest(n, sender int, value []byte, opts ...Option) Request {
	return Request{N: n, Opts: opts, kind: engine.KindBB, sender: sender,
		value: append([]byte(nil), value...)}
}

// WeakAgreeRequest asks for one adaptive weak BA instance (inputs[i] is
// process i's proposal; nil predicate accepts any non-empty value).
func WeakAgreeRequest(n int, inputs [][]byte, predicate func([]byte) bool, opts ...Option) Request {
	cp := make([][]byte, len(inputs))
	for i, in := range inputs {
		cp[i] = append([]byte(nil), in...)
	}
	return Request{N: n, Opts: opts, kind: engine.KindWBA, inputs: cp, predicate: predicate}
}

// StrongAgreeBinaryRequest asks for one binary strong BA instance
// (inputs[i] is process i's bit).
func StrongAgreeBinaryRequest(n int, inputs []bool, opts ...Option) Request {
	return Request{N: n, Opts: opts, kind: engine.KindStrongBA,
		bits: append([]bool(nil), inputs...)}
}

// RunMany executes many agreement instances concurrently over one
// shared simulated deployment, fanning out over the multi-session
// engine: instances run in their own sessions, pipelined up to the
// WithInflight window (default: as deep as the workload allows), with
// identical per-session decisions and word counts at every window size.
// Results are returned in request order. Result.Ticks is the session's
// decision latency in δ units (not the whole run's length).
//
// Only crash fault patterns are supported here (FaultCrash,
// FaultCrashLeader): the batch shares one deployment, so the corrupted
// set persists across all instances, as it would in production.
func RunMany(ctx context.Context, reqs ...Request) ([]*Result, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%w: no requests", ErrInputs)
	}
	n := 0
	for i := range reqs {
		if reqs[i].N == 0 {
			continue
		}
		if n == 0 {
			n = reqs[i].N
		} else if reqs[i].N != n {
			return nil, fmt.Errorf("%w: request %d wants n=%d, batch has n=%d", ErrBadN, i, reqs[i].N, n)
		}
	}
	merged := Options{N: n}
	for i := range reqs {
		for _, opt := range reqs[i].Opts {
			opt(&merged)
		}
	}
	// Reuse the legacy validation so every sentinel behaves identically
	// across entry points.
	if _, err := baseSpec(merged); err != nil {
		return nil, err
	}
	var leader bool
	switch merged.Pattern {
	case "", FaultCrash:
	case FaultCrashLeader:
		leader = true
	default:
		return nil, fmt.Errorf("%w: pattern %q is not supported by multi-session runs (crash patterns only)",
			ErrOptions, merged.Pattern)
	}

	ereqs := make([]engine.Request, len(reqs))
	for i := range reqs {
		r := &reqs[i]
		switch r.kind {
		case engine.KindBB:
			if r.sender < 0 || r.sender >= n {
				return nil, fmt.Errorf("%w: request %d sender %d out of range", ErrInputs, i, r.sender)
			}
			ereqs[i] = engine.Request{Kind: engine.KindBB,
				Sender: types.ProcessID(r.sender), Value: types.Value(r.value)}
		case engine.KindWBA:
			if len(r.inputs) != n {
				return nil, fmt.Errorf("%w: request %d needs %d inputs, got %d", ErrInputs, i, n, len(r.inputs))
			}
			inputs := make([]types.Value, n)
			for p, in := range r.inputs {
				if len(in) == 0 {
					return nil, fmt.Errorf("%w: request %d process %d has an empty input", ErrInputs, i, p)
				}
				inputs[p] = types.Value(in)
			}
			var pred func(types.Value) bool
			if user := r.predicate; user != nil {
				pred = func(v types.Value) bool { return user([]byte(v)) }
			}
			ereqs[i] = engine.Request{Kind: engine.KindWBA, Inputs: inputs, Predicate: pred}
		case engine.KindStrongBA:
			if len(r.bits) != n {
				return nil, fmt.Errorf("%w: request %d needs %d inputs, got %d", ErrInputs, i, n, len(r.bits))
			}
			inputs := make([]types.Value, n)
			for p, b := range r.bits {
				inputs[p] = types.BinaryValue(b)
			}
			ereqs[i] = engine.Request{Kind: engine.KindStrongBA, Inputs: inputs}
		default:
			return nil, fmt.Errorf("%w: request %d was not built by a Request constructor", ErrInputs, i)
		}
	}

	rep, err := engine.Run(engine.Config{
		N: n, T: merged.Threshold, F: merged.Faults, LeaderFault: leader,
		Inflight: merged.Inflight, Seed: merged.Seed,
		Ed25519: merged.RealSignatures, Trace: merged.Trace,
		Halt: haltFrom(ctx), Scheduler: merged.Sched,
	}, ereqs)
	if err != nil {
		return nil, mapCanceled(ctx, err)
	}

	out := make([]*Result, len(rep.Sessions))
	for i := range rep.Sessions {
		s := &rep.Sessions[i]
		res := &Result{
			Bottom:            s.Decision.IsBottom(),
			Agreement:         s.Agreement,
			AllDecided:        s.AllDecided,
			Words:             s.Words,
			Messages:          s.Messages,
			FallbackProcesses: s.FallbackProcs,
			LayerWords:        make(map[string]int64, len(s.ByLayer)),
		}
		if s.DecisionTick > s.Start {
			res.Ticks = int64(s.DecisionTick - s.Start)
		}
		if !s.Decision.IsBottom() {
			res.Decision = append([]byte(nil), s.Decision...)
		}
		for layer, st := range s.ByLayer {
			res.LayerWords[layer] = st.Words
		}
		out[i] = res
	}
	return out, nil
}
