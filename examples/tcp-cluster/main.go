// TCP-cluster: the same state machines, over a real network. Spawns five
// nodes on localhost TCP ports, runs the adaptive Byzantine Broadcast
// between them, and prints each node's decision and wire costs.
//
//	go run ./examples/tcp-cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/metrics"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/transport"
	"adaptiveba/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 5
	params, err := types.NewParams(n)
	if err != nil {
		return err
	}
	// Trusted setup: in a deployment this is a key ceremony; here every
	// node derives the same ring from a shared seed.
	ring, err := sig.NewHMACRing(n, []byte("tcp-cluster-demo"))
	if err != nil {
		return err
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("dealer"))

	// Reserve n localhost ports.
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	results := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		id := types.ProcessID(i)
		rec := metrics.NewRecorder()
		machine := bb.NewMachine(bb.Config{
			Params: params, Crypto: crypto, ID: id,
			Sender: 0, Input: types.Value("ship it"), Tag: "demo",
		})
		node, err := transport.NewNode(transport.Config{
			Params:       params,
			Crypto:       crypto,
			ID:           id,
			Addrs:        addrs,
			Registry:     transport.NewFullRegistry(),
			TickInterval: 15 * time.Millisecond,
			Recorder:     rec,
		}, machine)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			decision, err := node.Run(ctx)
			if err != nil {
				errs[id] = err
				return
			}
			rep := rec.Snapshot()
			results[id] = fmt.Sprintf("node %d @ %-21s decided %q  (%d msgs, %d words, %d bytes sent)",
				id, addrs[id], decision, rep.Honest.Messages, rep.Honest.Words, rep.Honest.Bytes)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	fmt.Println("5-node adaptive Byzantine Broadcast over localhost TCP:")
	for _, line := range results {
		fmt.Println(" ", line)
	}
	return nil
}
