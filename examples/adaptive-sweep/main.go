// Adaptive-sweep: the paper's headline result, live. Sweeps the number of
// failures f for the adaptive Byzantine Broadcast at fixed n and prints
// the word complexity next to an always-quadratic baseline, for both
// crash failures (the practical common case — flat O(n)) and worst-case
// Byzantine leaders (the O(n(f+1)) bound).
//
//	go run ./examples/adaptive-sweep
package main

import (
	"fmt"
	"log"

	"adaptiveba"
	"adaptiveba/internal/harness"
)

func main() {
	const n = 41
	fmt.Printf("adaptive Byzantine Broadcast, n=%d (t=%d, fallback threshold f>%d)\n\n",
		n, (n-1)/2, (n-(n-1)/2-1)/2)
	fmt.Printf("%4s %16s %16s %18s\n", "f", "words (crash)", "words (worst)", "quadratic baseline")

	for _, f := range []int{0, 1, 2, 4, 6, 8, 10} {
		crash, err := adaptiveba.Broadcast(adaptiveba.Options{N: n, Faults: f}, []byte("v"))
		if err != nil {
			log.Fatal(err)
		}
		// The worst case needs protocol-aware Byzantine leaders; that
		// attack lives in the harness.
		worst, err := harness.Run(harness.Spec{
			Protocol: harness.ProtocolBB, N: n, F: f, Fault: harness.FaultSpam,
		})
		if err != nil {
			log.Fatal(err)
		}
		baseline, err := harness.Run(harness.Spec{
			Protocol: harness.ProtocolEchoBB, N: n, F: f,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %16d %16d %18d\n", f, crash.Words, worst.Words, baseline.Words)
	}

	fmt.Println("\ncrash failures keep the cost flat at O(n); Byzantine leaders pay ~Θ(n)")
	fmt.Println("per failure (the O(n(f+1)) bound); the baseline pays Θ(n²) always.")
}
