// Quickstart: broadcast a value to nine processes with the adaptive
// Byzantine Broadcast and print the paper's cost metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adaptiveba"
)

func main() {
	// A failure-free run: the adaptive protocol pays O(n) words.
	res, err := adaptiveba.Broadcast(adaptiveba.Options{N: 9}, []byte("block #4921"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decision:   %s\n", res.Decision)
	fmt.Printf("agreement:  %v, all decided: %v\n", res.Agreement, res.AllDecided)
	fmt.Printf("cost:       %d words in %d messages over %d rounds\n", res.Words, res.Messages, res.Ticks)

	// The same broadcast with two crashed processes: the vetting phases
	// wake up, costing ~O(n) extra words per failure — not O(n²).
	res2, err := adaptiveba.Broadcast(adaptiveba.Options{N: 9, Faults: 2}, []byte("block #4921"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith f=2 crashes: decision %q, %d words (was %d)\n", res2.Decision, res2.Words, res.Words)
}
