// Replicated-log: the system the paper's introduction motivates. Five
// replicas build a totally-ordered command log by running one adaptive
// Byzantine Broadcast per slot with rotating proposers — a miniature
// BFT state-machine-replication core whose per-command cost is O(n)
// words instead of the classic Θ(n²), because the underlying broadcast
// adapts to the actual number of failures.
//
//	go run ./examples/replicated-log
package main

import (
	"context"
	"fmt"
	"log"

	"adaptiveba"
)

func main() {
	const n, slots = 5, 10
	// Each replica has a queue of client commands to propose in its turns.
	queues := make([][][]byte, n)
	for i := range queues {
		queues[i] = [][]byte{
			[]byte(fmt.Sprintf("SET x%d=%d", i, i*10)),
			[]byte(fmt.Sprintf("INCR counter by %d", i+1)),
		}
	}

	run := func(faults int) {
		res, err := adaptiveba.ReplicateLogContext(context.Background(), n, queues, slots,
			adaptiveba.WithFaults(faults))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d, f=%d: replicas agree=%v, %.1f words per committed command\n",
			n, faults, res.Agreement, res.WordsPerCommit)
		for _, e := range res.Entries {
			if e.Command == nil {
				fmt.Printf("  slot %2d  proposer p%d  (skipped)\n", e.Slot, e.Proposer)
				continue
			}
			fmt.Printf("  slot %2d  proposer p%d  %q\n", e.Slot, e.Proposer, e.Command)
		}
		fmt.Println()
	}

	run(0) // every slot commits
	run(1) // p1's slots are skipped; the total order is still identical everywhere
}
