// Byzantine-faults: safety under active attack. Runs weak BA and strong
// BA against the adversary library — replayed stale traffic, a crashed
// sender, and maximal crash counts — and checks that agreement and
// validity hold every time.
//
//	go run ./examples/byzantine-faults
package main

import (
	"bytes"
	"fmt"
	"log"

	"adaptiveba"
)

func main() {
	check := func(name string, cond bool) {
		status := "ok"
		if !cond {
			status = "VIOLATED"
		}
		fmt.Printf("  %-58s %s\n", name, status)
		if !cond {
			log.Fatalf("property violated: %s", name)
		}
	}

	fmt.Println("weak BA, n=9, two replaying Byzantine processes:")
	inputs := make([][]byte, 9)
	for i := range inputs {
		inputs[i] = []byte(fmt.Sprintf("proposal-%d", i))
	}
	res, err := adaptiveba.WeakAgree(adaptiveba.Options{
		N: 9, Faults: 2, Pattern: adaptiveba.FaultReplay, Seed: 99,
	}, inputs, nil)
	if err != nil {
		log.Fatal(err)
	}
	check("all correct processes decided", res.AllDecided)
	check("agreement (identical decisions)", res.Agreement)
	check("decision is a real proposal or ⊥", res.Bottom || bytes.HasPrefix(res.Decision, []byte("proposal-")))

	fmt.Println("\nByzantine Broadcast, n=9, crashed sender:")
	res, err = adaptiveba.Broadcast(adaptiveba.Options{
		N: 9, Faults: 1, Pattern: adaptiveba.FaultCrashLeader,
	}, []byte("never sent"))
	if err != nil {
		log.Fatal(err)
	}
	check("all correct processes decided", res.AllDecided)
	check("agreement despite the faulty sender", res.Agreement)
	check("common decision is ⊥ (sender said nothing)", res.Bottom)

	fmt.Println("\nstrong BA, n=9, maximum f = t = 4 crashes, unanimous inputs:")
	bits := make([]bool, 9)
	for i := range bits {
		bits[i] = true
	}
	res, err = adaptiveba.StrongAgreeBinary(adaptiveba.Options{N: 9, Faults: 4}, bits)
	if err != nil {
		log.Fatal(err)
	}
	bit, ok := res.Bit()
	check("all correct processes decided", res.AllDecided)
	check("strong unanimity (decision = common input 1)", ok && bit)
	fmt.Printf("\n  the run needed the quadratic fallback on %d processes\n", res.FallbackProcesses)
	fmt.Println("\nall safety properties held under attack.")
}
